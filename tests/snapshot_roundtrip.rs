//! Property tests of the snapshot/resume engine through the public facade.
//!
//! The contract under test is the tentpole guarantee of the snapshot
//! codec: for any (grid, algorithm, traffic seed, transient timeline,
//! pause cycle), pausing a run, serializing it, restoring it into a
//! freshly-assembled simulator, and finishing produces a [`SimReport`]
//! byte-identical to the uninterrupted run — and the restored state
//! re-encodes to the very same snapshot bytes (`encode(decode(b)) == b`).
//! Corrupt input must always surface as a typed `CodecError`, never a
//! panic, all the way up to the `deft-repro --resume` CLI exit path.

use deft::experiments::Algo;
use deft::prelude::*;
use deft_codec::CodecError;
use deft_traffic::{Trace, TraceEvent};
use proptest::prelude::*;

/// Simulation windows small enough for property-test case counts, large
/// enough that worms, fault transitions, and source queues are all live
/// at the pause point.
fn roundtrip_cfg(seed: u64) -> SimConfig {
    SimConfig {
        warmup: 150,
        measure: 900,
        drain: 15_000,
        seed,
        ..SimConfig::default()
    }
}

/// Every routing algorithm of the evaluation, ablations included.
const ALGOS: [Algo; 5] = [
    Algo::Deft,
    Algo::DeftDis,
    Algo::DeftRan,
    Algo::Mtr,
    Algo::Rc,
];

/// The sampled systems: the two paper baselines plus a non-square grid.
fn make_sys(idx: usize) -> ChipletSystem {
    match idx {
        0 => ChipletSystem::baseline_4(),
        1 => ChipletSystem::baseline_6(),
        _ => ChipletSystem::chiplet_grid(3, 2).expect("3x2 grid is valid"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Grid × algorithm × traffic seed × timeline × pause cycle: resume
    /// is lossless and byte-exact.
    #[test]
    fn resume_matches_straight_through_everywhere(
        sys_idx in 0usize..3,
        algo_idx in 0usize..ALGOS.len(),
        seed in 0u64..1_000,
        tl_seed in 0u64..1_000,
        pause_tenths in 1u64..10,
    ) {
        let sys = make_sys(sys_idx);
        let algo = ALGOS[algo_idx];
        let cfg = roundtrip_cfg(0x5EED ^ seed);
        let horizon = cfg.warmup + cfg.measure;
        let tl = FaultTimeline::transient(&sys, &TransientConfig {
            mean_healthy: horizon as f64 * 2.0,
            mean_faulty: horizon as f64 / 6.0,
            horizon,
            seed: tl_seed,
        });
        let pattern = uniform(&sys, 0.003);
        let mk = || {
            Simulator::new(
                &sys,
                FaultState::none(&sys),
                algo.build(&sys),
                &pattern,
                cfg,
            )
            .with_timeline(&tl)
        };
        let straight = mk().run();

        let pause = horizon * pause_tenths / 10;
        let mut first = mk();
        first.start();
        first.advance_to(pause);
        let snap = first.snapshot();

        let mut resumed = mk();
        prop_assert!(
            resumed.resume_from(&snap).is_ok(),
            "{} rejected its own snapshot",
            algo.name()
        );
        // Lossless: the restored state re-encodes to the same bytes.
        prop_assert_eq!(resumed.snapshot(), snap);
        prop_assert_eq!(resumed.finish(), straight);
    }

    /// The idle-skip path: sparse trace traffic whose provably-idle
    /// windows the engine jumps over. Resume must preserve the skip
    /// cursors — the resumed run, the straight run, and the
    /// cycle-by-cycle dense reference all agree.
    #[test]
    fn resume_preserves_idle_skip_state(
        pause in 100u64..4_000,
        tl_seed in 0u64..500,
    ) {
        let sys = ChipletSystem::baseline_4();
        let n = sys.node_count() as u32;
        let events: Vec<TraceEvent> = (0..10u64)
            .map(|k| TraceEvent {
                cycle: k * 400,
                src: NodeId((7 * k as u32) % n),
                dst: NodeId((31 + 41 * k as u32) % n),
            })
            .filter(|e| e.src != e.dst)
            .collect();
        let trace = Trace::new("trickle", events, sys.node_count());
        let cfg = SimConfig {
            warmup: 500,
            measure: 3_500,
            drain: 10_000,
            ..SimConfig::default()
        };
        let horizon = cfg.warmup + cfg.measure;
        let tl = FaultTimeline::transient(&sys, &TransientConfig {
            mean_healthy: horizon as f64 * 4.0,
            mean_faulty: horizon as f64 / 8.0,
            horizon,
            seed: tl_seed,
        });
        let mk = || {
            Simulator::new(
                &sys,
                FaultState::none(&sys),
                Box::new(DeftRouting::distance_based(&sys)),
                &trace,
                cfg,
            )
            .with_timeline(&tl)
        };
        let straight = mk().run();
        let dense = mk().run_dense_reference();
        prop_assert_eq!(&straight, &dense);

        let mut first = mk();
        first.start();
        first.advance_to(pause);
        let snap = first.snapshot();
        let mut resumed = mk();
        prop_assert!(resumed.resume_from(&snap).is_ok());
        prop_assert_eq!(resumed.snapshot(), snap);
        prop_assert_eq!(resumed.finish(), straight);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any single-byte corruption or truncation of a valid snapshot
    /// decodes to a typed error — never a panic, never a silent accept
    /// of altered payload bytes.
    #[test]
    fn corruption_always_yields_a_typed_error(
        flip_at in 0usize..30_000,
        flip_mask in 1u8..=255,
        cut in 0usize..30_000,
    ) {
        let sys = ChipletSystem::baseline_4();
        let cfg = SimConfig {
            warmup: 50,
            measure: 300,
            drain: 5_000,
            ..SimConfig::default()
        };
        let pattern = uniform(&sys, 0.004);
        let mk = || {
            Simulator::new(
                &sys,
                FaultState::none(&sys),
                Box::new(DeftRouting::new(&sys)),
                &pattern,
                cfg,
            )
        };
        let mut sim = mk();
        sim.start();
        sim.advance_to(200);
        let snap = sim.snapshot();

        let mut flipped = snap.clone();
        let at = flip_at % flipped.len();
        flipped[at] ^= flip_mask;
        let err = mk().resume_from(&flipped);
        prop_assert!(err.is_err(), "flipped byte {at} was accepted");

        let cut = cut % snap.len();
        let err = mk().resume_from(&snap[..cut]).unwrap_err();
        prop_assert!(
            matches!(
                err,
                CodecError::Truncated { .. } | CodecError::BadMagic { .. }
            ),
            "truncation at {cut} gave {err:?}"
        );
    }
}

/// The CLI surfaces codec errors as a clean one-line failure (exit 1),
/// not a panic or a backtrace.
#[test]
fn repro_resume_rejects_corrupt_file_cleanly() {
    let dir = std::env::temp_dir();
    let path = dir.join("deft-snapshot-roundtrip-corrupt.snap");
    std::fs::write(&path, b"DEFTSNAPgarbage-that-is-not-a-snapshot").unwrap();
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_deft-repro"))
        .args(["checkpoint", "--quick", "--resume"])
        .arg(&path)
        .output()
        .expect("deft-repro runs");
    let _ = std::fs::remove_file(&path);
    assert_eq!(out.status.code(), Some(1), "corrupt resume must exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot resume from"),
        "stderr must name the failing file: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "corrupt input must not panic: {stderr}"
    );
}

/// Resuming against a *differently assembled* simulator (other
/// algorithm) is a descriptive mismatch, exercised end to end through
/// the facade.
#[test]
fn resume_mismatch_is_descriptive() {
    let sys = ChipletSystem::baseline_4();
    let cfg = roundtrip_cfg(7);
    let pattern = uniform(&sys, 0.004);
    let mut sim = Simulator::new(
        &sys,
        FaultState::none(&sys),
        Algo::Deft.build(&sys),
        &pattern,
        cfg,
    );
    sim.start();
    sim.advance_to(400);
    let snap = sim.snapshot();
    let mut other = Simulator::new(
        &sys,
        FaultState::none(&sys),
        Algo::Mtr.build(&sys),
        &pattern,
        cfg,
    );
    let err = other.resume_from(&snap).unwrap_err();
    let msg = err.to_string();
    assert!(
        matches!(err, CodecError::Mismatch(_)),
        "wrong-algorithm resume gave {err:?}"
    );
    assert!(
        msg.contains("DeFT") && msg.contains("MTR"),
        "mismatch message names both algorithms: {msg}"
    );
}
