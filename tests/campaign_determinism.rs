//! The campaign runner's core guarantee: a parallel campaign (`--jobs 4`)
//! produces **byte-identical** reports to the serial path (`--jobs 1`) at
//! the same seeds, across several experiments. Per-run seeds derive from
//! the grid position, never from scheduling, and results merge in grid
//! order — these tests pin that contract at the rendered-report level
//! (both the human-readable tables and the CSV emitters).

use deft::experiments::{
    fig4, fig5_panels, fig7_jobs, rho_ablation_jobs, Algo, ExpConfig, SynPattern,
};
use deft::report::{
    latency_sweep_csv, reachability_csv, render_latency_sweep, render_reachability,
    render_rho_ablation, render_vc_util, rho_ablation_csv, vc_util_csv,
};
use deft_topo::ChipletSystem;

fn cfg(jobs: usize) -> ExpConfig {
    ExpConfig::quick().with_jobs(jobs)
}

#[test]
fn fig4_latency_sweep_is_byte_identical_across_job_counts() {
    let sys = ChipletSystem::baseline_4();
    let serial = fig4(
        &sys,
        SynPattern::Uniform,
        &[0.002, 0.004],
        &Algo::MAIN,
        &cfg(1),
    );
    let parallel = fig4(
        &sys,
        SynPattern::Uniform,
        &[0.002, 0.004],
        &Algo::MAIN,
        &cfg(4),
    );
    assert_eq!(
        render_latency_sweep(&serial),
        render_latency_sweep(&parallel),
        "parallel fig4 text report diverged from serial"
    );
    assert_eq!(
        latency_sweep_csv(&serial),
        latency_sweep_csv(&parallel),
        "parallel fig4 CSV diverged from serial"
    );
}

#[test]
fn fig5_vc_panels_are_byte_identical_across_job_counts() {
    let sys = ChipletSystem::baseline_4();
    let patterns = [SynPattern::Uniform, SynPattern::Hotspot];
    let serial = fig5_panels(&sys, &patterns, 0.004, &cfg(1));
    let parallel = fig5_panels(&sys, &patterns, 0.004, &cfg(4));
    for ((p_s, rows_s), (p_p, rows_p)) in serial.iter().zip(&parallel) {
        assert_eq!(p_s.name(), p_p.name());
        assert_eq!(
            render_vc_util(p_s.name(), rows_s),
            render_vc_util(p_p.name(), rows_p),
            "parallel fig5 panel {} diverged from serial",
            p_s.name()
        );
        assert_eq!(vc_util_csv(rows_s), vc_util_csv(rows_p));
    }
}

#[test]
fn fig7_reachability_is_byte_identical_across_job_counts() {
    let sys = ChipletSystem::baseline_4();
    let serial = fig7_jobs(&sys, 6, 1);
    let parallel = fig7_jobs(&sys, 6, 4);
    assert_eq!(
        render_reachability("4 Chiplets", &serial),
        render_reachability("4 Chiplets", &parallel),
        "parallel fig7 report diverged from serial"
    );
    assert_eq!(reachability_csv(&serial), reachability_csv(&parallel));
}

/// The two parallelism layers compose: an outer campaign fan-out
/// (`--jobs 4`) running simulators that each shard their cycle across
/// tick workers (`--tick-threads 2`) must be byte-identical to the fully
/// serial path (`jobs = 1`, `tick_threads = 1`) — at the rendered-report
/// level, for both emitters.
#[test]
fn nested_jobs_and_tick_threads_match_fully_serial() {
    let sys = ChipletSystem::baseline_4();
    let serial = fig4(
        &sys,
        SynPattern::Uniform,
        &[0.002, 0.004],
        &Algo::MAIN,
        &cfg(1),
    );
    let nested_cfg = cfg(4).with_tick_threads(2);
    let nested = fig4(
        &sys,
        SynPattern::Uniform,
        &[0.002, 0.004],
        &Algo::MAIN,
        &nested_cfg,
    );
    assert_eq!(
        render_latency_sweep(&serial),
        render_latency_sweep(&nested),
        "jobs=4 x tick_threads=2 fig4 text report diverged from fully serial"
    );
    assert_eq!(
        latency_sweep_csv(&serial),
        latency_sweep_csv(&nested),
        "jobs=4 x tick_threads=2 fig4 CSV diverged from fully serial"
    );
}

#[test]
fn rho_ablation_is_byte_identical_across_job_counts() {
    let sys = ChipletSystem::baseline_4();
    let serial = rho_ablation_jobs(&sys, 1);
    let parallel = rho_ablation_jobs(&sys, 4);
    assert_eq!(
        render_rho_ablation(&serial),
        render_rho_ablation(&parallel),
        "parallel rho ablation diverged from serial"
    );
    assert_eq!(rho_ablation_csv(&serial), rho_ablation_csv(&parallel));
}
