//! The campaign runner's core guarantee: a parallel campaign (`--jobs 4`)
//! produces **byte-identical** reports to the serial path (`--jobs 1`) at
//! the same seeds, across several experiments. Per-run seeds derive from
//! the grid position, never from scheduling, and results merge in grid
//! order — these tests pin that contract at the rendered-report level
//! (both the human-readable tables and the CSV emitters).

use deft::campaign::CacheStore;
use deft::experiments::{
    fig4, fig5_panels, fig7_jobs, rho_ablation_cached, rho_ablation_jobs, Algo, ExpConfig,
    SynPattern,
};
use deft::report::{
    latency_sweep_csv, reachability_csv, render_latency_sweep, render_reachability,
    render_rho_ablation, render_vc_util, rho_ablation_csv, vc_util_csv,
};
use deft_topo::ChipletSystem;

fn cfg(jobs: usize) -> ExpConfig {
    ExpConfig::quick().with_jobs(jobs)
}

#[test]
fn fig4_latency_sweep_is_byte_identical_across_job_counts() {
    let sys = ChipletSystem::baseline_4();
    let serial = fig4(
        &sys,
        SynPattern::Uniform,
        &[0.002, 0.004],
        &Algo::MAIN,
        &cfg(1),
    );
    let parallel = fig4(
        &sys,
        SynPattern::Uniform,
        &[0.002, 0.004],
        &Algo::MAIN,
        &cfg(4),
    );
    assert_eq!(
        render_latency_sweep(&serial),
        render_latency_sweep(&parallel),
        "parallel fig4 text report diverged from serial"
    );
    assert_eq!(
        latency_sweep_csv(&serial),
        latency_sweep_csv(&parallel),
        "parallel fig4 CSV diverged from serial"
    );
}

#[test]
fn fig5_vc_panels_are_byte_identical_across_job_counts() {
    let sys = ChipletSystem::baseline_4();
    let patterns = [SynPattern::Uniform, SynPattern::Hotspot];
    let serial = fig5_panels(&sys, &patterns, 0.004, &cfg(1));
    let parallel = fig5_panels(&sys, &patterns, 0.004, &cfg(4));
    for ((p_s, rows_s), (p_p, rows_p)) in serial.iter().zip(&parallel) {
        assert_eq!(p_s.name(), p_p.name());
        assert_eq!(
            render_vc_util(p_s.name(), rows_s),
            render_vc_util(p_p.name(), rows_p),
            "parallel fig5 panel {} diverged from serial",
            p_s.name()
        );
        assert_eq!(vc_util_csv(rows_s), vc_util_csv(rows_p));
    }
}

#[test]
fn fig7_reachability_is_byte_identical_across_job_counts() {
    let sys = ChipletSystem::baseline_4();
    let serial = fig7_jobs(&sys, 6, 1);
    let parallel = fig7_jobs(&sys, 6, 4);
    assert_eq!(
        render_reachability("4 Chiplets", &serial),
        render_reachability("4 Chiplets", &parallel),
        "parallel fig7 report diverged from serial"
    );
    assert_eq!(reachability_csv(&serial), reachability_csv(&parallel));
}

/// The two parallelism layers compose: an outer campaign fan-out
/// (`--jobs 4`) running simulators that each shard their cycle across
/// tick workers (`--tick-threads 2`) must be byte-identical to the fully
/// serial path (`jobs = 1`, `tick_threads = 1`) — at the rendered-report
/// level, for both emitters.
#[test]
fn nested_jobs_and_tick_threads_match_fully_serial() {
    let sys = ChipletSystem::baseline_4();
    let serial = fig4(
        &sys,
        SynPattern::Uniform,
        &[0.002, 0.004],
        &Algo::MAIN,
        &cfg(1),
    );
    let nested_cfg = cfg(4).with_tick_threads(2);
    let nested = fig4(
        &sys,
        SynPattern::Uniform,
        &[0.002, 0.004],
        &Algo::MAIN,
        &nested_cfg,
    );
    assert_eq!(
        render_latency_sweep(&serial),
        render_latency_sweep(&nested),
        "jobs=4 x tick_threads=2 fig4 text report diverged from fully serial"
    );
    assert_eq!(
        latency_sweep_csv(&serial),
        latency_sweep_csv(&nested),
        "jobs=4 x tick_threads=2 fig4 CSV diverged from fully serial"
    );
}

/// Two concurrent-style interleavings — the same two campaigns issued in
/// opposite order, both fanned out over four workers — populate their
/// stores with byte-identical contents (same entry file names, same entry
/// bytes), identical to a fully serial cold run's, and merge identical
/// reports. Store contents are a function of the grid, never of
/// scheduling or arrival order.
#[test]
fn interleaved_parallel_population_matches_serial_store_contents() {
    use std::path::{Path, PathBuf};
    use std::sync::Arc;

    let sys = ChipletSystem::baseline_4();
    let rates = [0.002, 0.004];

    let run = |jobs: usize, rho_first: bool, dir: &Path| -> (String, String) {
        let store = Arc::new(CacheStore::open(dir).expect("open store"));
        let exp_cfg = cfg(jobs).with_cache(Arc::clone(&store));
        let (sweep, rho);
        if rho_first {
            rho = rho_ablation_cached(&sys, jobs, Some(&store));
            sweep = fig4(&sys, SynPattern::Uniform, &rates, &Algo::MAIN, &exp_cfg);
        } else {
            sweep = fig4(&sys, SynPattern::Uniform, &rates, &Algo::MAIN, &exp_cfg);
            rho = rho_ablation_cached(&sys, jobs, Some(&store));
        }
        let s = store.stats();
        assert_eq!(s.hits, 0, "cold runs into fresh stores must all miss");
        assert_eq!(s.misses, s.stored);
        (latency_sweep_csv(&sweep), rho_ablation_csv(&rho))
    };
    let contents = |dir: &Path| -> Vec<(String, Vec<u8>)> {
        let store = CacheStore::open(dir).expect("reopen store");
        store
            .entries()
            .expect("list entries")
            .iter()
            .map(|p| {
                (
                    p.file_name().unwrap().to_string_lossy().into_owned(),
                    std::fs::read(p).expect("read entry"),
                )
            })
            .collect()
    };

    let dirs: Vec<PathBuf> = ["serial", "ab", "ba"]
        .iter()
        .map(|tag| {
            let d =
                std::env::temp_dir().join(format!("deft-interleave-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&d);
            d
        })
        .collect();
    let serial = run(1, false, &dirs[0]);
    let ab = run(4, false, &dirs[1]);
    let ba = run(4, true, &dirs[2]);
    assert_eq!(serial, ab, "jobs=4 reports diverged from serial");
    assert_eq!(
        serial, ba,
        "reversed interleaving reports diverged from serial"
    );

    let want = contents(&dirs[0]);
    assert!(!want.is_empty());
    assert_eq!(want, contents(&dirs[1]), "jobs=4 store contents diverged");
    assert_eq!(
        want,
        contents(&dirs[2]),
        "reversed interleaving store contents diverged"
    );
    for d in &dirs {
        let _ = std::fs::remove_dir_all(d);
    }
}

#[test]
fn rho_ablation_is_byte_identical_across_job_counts() {
    let sys = ChipletSystem::baseline_4();
    let serial = rho_ablation_jobs(&sys, 1);
    let parallel = rho_ablation_jobs(&sys, 4);
    assert_eq!(
        render_rho_ablation(&serial),
        render_rho_ablation(&parallel),
        "parallel rho ablation diverged from serial"
    );
    assert_eq!(rho_ablation_csv(&serial), rho_ablation_csv(&parallel));
}
