//! Differential tests of the partitioned parallel tick engine.
//!
//! The contract under test is the tentpole guarantee of the parallel
//! engine: `tick_threads` is a pure throughput knob. For any (grid,
//! algorithm, traffic seed, transient timeline), running with 2, 4, or 8
//! worker shards produces a [`SimReport`] *equal in every field* to the
//! serial engine's — same delivered counts, same latency histogram, same
//! per-epoch stats, same VC-usage tallies. The serial engine (and, on the
//! idle-skip path, `run_dense_reference`) stays in the tree as the
//! permanent oracle these runs are compared against.
//!
//! Snapshots are thread-count-agnostic: a run paused under one thread
//! count must re-encode and finish identically under another.

use deft::experiments::Algo;
use deft::prelude::*;
use proptest::prelude::*;

/// Simulation windows small enough for property-test case counts, large
/// enough that worms, fault transitions, and source queues are all live
/// while the shards run.
fn parallel_cfg(seed: u64) -> SimConfig {
    SimConfig {
        warmup: 150,
        measure: 900,
        drain: 15_000,
        seed,
        ..SimConfig::default()
    }
}

/// Every routing algorithm of the evaluation, ablations included.
const ALGOS: [Algo; 5] = [
    Algo::Deft,
    Algo::DeftDis,
    Algo::DeftRan,
    Algo::Mtr,
    Algo::Rc,
];

/// Thread counts the engine must agree across: serial, and the shard
/// counts the acceptance gate sweeps. On the small baselines 8 collapses
/// to fewer shards (never more than chiplets + interposer rows), which is
/// exactly the degenerate path worth covering.
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// The sampled systems: the two paper baselines plus a non-square grid.
fn make_sys(idx: usize) -> ChipletSystem {
    match idx {
        0 => ChipletSystem::baseline_4(),
        1 => ChipletSystem::baseline_6(),
        _ => ChipletSystem::chiplet_grid(3, 2).expect("3x2 grid is valid"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Grid × algorithm × traffic seed × timeline: every thread count
    /// reproduces the serial report exactly.
    #[test]
    fn parallel_tick_matches_serial_everywhere(
        sys_idx in 0usize..3,
        algo_idx in 0usize..ALGOS.len(),
        seed in 0u64..1_000,
        tl_seed in 0u64..1_000,
    ) {
        let sys = make_sys(sys_idx);
        let algo = ALGOS[algo_idx];
        let cfg = parallel_cfg(0x7A11 ^ seed);
        let horizon = cfg.warmup + cfg.measure;
        let tl = FaultTimeline::transient(&sys, &TransientConfig {
            mean_healthy: horizon as f64 * 2.0,
            mean_faulty: horizon as f64 / 6.0,
            horizon,
            seed: tl_seed,
        });
        let pattern = uniform(&sys, 0.003);
        let mk = |threads: usize| {
            Simulator::new(
                &sys,
                FaultState::none(&sys),
                algo.build(&sys),
                &pattern,
                cfg.with_tick_threads(threads),
            )
            .with_timeline(&tl)
        };
        let serial = mk(1).run();
        // The word-batched phases against the tick-every-cycle dense
        // oracle first: lane-mask scans, idle-skip, and sharding must all
        // collapse to the same report.
        let dense = mk(1).run_dense_reference();
        prop_assert_eq!(
            &serial,
            &dense,
            "{} batched serial run diverges from the dense reference",
            algo.name()
        );
        for threads in THREADS {
            let parallel = mk(threads).run();
            prop_assert_eq!(
                &parallel,
                &serial,
                "{} diverges at tick_threads={}",
                algo.name(),
                threads
            );
        }
    }

    /// Snapshots are thread-count-agnostic: pause under one thread count,
    /// resume under another, and both the re-encoded snapshot bytes and
    /// the finished report match the serial straight-through run.
    #[test]
    fn snapshot_resume_across_thread_counts(
        sys_idx in 0usize..3,
        algo_idx in 0usize..ALGOS.len(),
        seed in 0u64..1_000,
        pause_tenths in 1u64..10,
        snap_threads in 0usize..THREADS.len(),
        resume_threads in 0usize..THREADS.len(),
    ) {
        let sys = make_sys(sys_idx);
        let algo = ALGOS[algo_idx];
        let cfg = parallel_cfg(0x5A4B ^ seed);
        let horizon = cfg.warmup + cfg.measure;
        let tl = FaultTimeline::transient(&sys, &TransientConfig {
            mean_healthy: horizon as f64 * 2.0,
            mean_faulty: horizon as f64 / 6.0,
            horizon,
            seed: seed ^ 0xC0DE,
        });
        let pattern = uniform(&sys, 0.003);
        let mk = |threads: usize| {
            Simulator::new(
                &sys,
                FaultState::none(&sys),
                algo.build(&sys),
                &pattern,
                cfg.with_tick_threads(threads),
            )
            .with_timeline(&tl)
        };
        let straight = mk(1).run();

        let pause = horizon * pause_tenths / 10;
        let mut first = mk(THREADS[snap_threads]);
        first.start();
        first.advance_to(pause);
        let snap = first.snapshot();

        // The serial engine at the same pause point must produce the very
        // same snapshot bytes: thread count never reaches the wire format.
        let mut serial_ref = mk(1);
        serial_ref.start();
        serial_ref.advance_to(pause);
        prop_assert_eq!(
            serial_ref.snapshot(),
            snap.clone(),
            "snapshot bytes depend on tick_threads={}",
            THREADS[snap_threads]
        );

        let mut resumed = mk(THREADS[resume_threads]);
        prop_assert!(
            resumed.resume_from(&snap).is_ok(),
            "{} rejected a snapshot taken under tick_threads={}",
            algo.name(),
            THREADS[snap_threads]
        );
        prop_assert_eq!(resumed.snapshot(), snap);
        prop_assert_eq!(resumed.finish(), straight);
    }
}

/// The idle-skip path under shards: sparse trace traffic whose
/// provably-idle windows the engine jumps over. The parallel engine, the
/// serial engine, and the cycle-by-cycle dense reference all agree.
#[test]
fn parallel_tick_preserves_idle_skip() {
    use deft_traffic::{Trace, TraceEvent};

    let sys = ChipletSystem::baseline_4();
    let n = sys.node_count() as u32;
    let events: Vec<TraceEvent> = (0..10u64)
        .map(|k| TraceEvent {
            cycle: k * 400,
            src: NodeId((7 * k as u32) % n),
            dst: NodeId((31 + 41 * k as u32) % n),
        })
        .filter(|e| e.src != e.dst)
        .collect();
    let trace = Trace::new("trickle", events, sys.node_count());
    let cfg = SimConfig {
        warmup: 500,
        measure: 3_500,
        drain: 10_000,
        ..SimConfig::default()
    };
    let horizon = cfg.warmup + cfg.measure;
    let tl = FaultTimeline::transient(
        &sys,
        &TransientConfig {
            mean_healthy: horizon as f64 * 4.0,
            mean_faulty: horizon as f64 / 8.0,
            horizon,
            seed: 17,
        },
    );
    let mk = |threads: usize| {
        Simulator::new(
            &sys,
            FaultState::none(&sys),
            Box::new(DeftRouting::distance_based(&sys)),
            &trace,
            cfg.with_tick_threads(threads),
        )
        .with_timeline(&tl)
    };
    let serial = mk(1).run();
    let dense = mk(1).run_dense_reference();
    assert_eq!(serial, dense, "serial engine diverges from dense oracle");
    for threads in [2, 4, 8] {
        assert_eq!(
            mk(threads).run(),
            serial,
            "idle-skip diverges at tick_threads={threads}"
        );
    }
}

/// Thread counts beyond the shard supply (more workers than chiplets +
/// interposer rows) clamp instead of panicking or diverging.
#[test]
fn oversubscribed_thread_count_is_clamped() {
    let sys = ChipletSystem::baseline_4();
    let pattern = uniform(&sys, 0.004);
    let cfg = parallel_cfg(3);
    let mk = |threads: usize| {
        Simulator::new(
            &sys,
            FaultState::none(&sys),
            Algo::Deft.build(&sys),
            &pattern,
            cfg.with_tick_threads(threads),
        )
    };
    let serial = mk(1).run();
    assert_eq!(mk(64).run(), serial, "oversubscribed run diverges");
}
