//! Supervised out-of-process campaign execution (`deft-repro --workers N`).
//!
//! The in-process engine is the permanent oracle: every test runs the
//! same experiment serially and under a supervised worker pool and
//! demands byte-identical stdout — with no faults, and under every
//! injected failure class the supervisor recovers from (worker crash,
//! SIGKILL, nonzero exit, hung cell past the deadline, malformed frame,
//! in-cell panic). Poison cells (failures beyond the retry budget)
//! quarantine instead of failing the campaign; `--strict-cells` turns
//! that into exit code 3. Fault injection uses the deterministic
//! `DEFT_WORKER_FAULT_PLAN` hook, a pure function of (cell, attempt), so
//! none of these tests depend on timing.

use std::path::PathBuf;
use std::process::Command;

/// The `deft-repro` binary with a clean fault-plan environment.
fn repro() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_deft-repro"));
    cmd.env_remove("DEFT_WORKER_FAULT_PLAN");
    cmd
}

fn run(args: &[&str], plan: Option<&str>) -> std::process::Output {
    let mut cmd = repro();
    cmd.args(args);
    if let Some(p) = plan {
        cmd.env("DEFT_WORKER_FAULT_PLAN", p);
    }
    cmd.output().expect("deft-repro runs")
}

fn stdout_of(out: &std::process::Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr_of(out: &std::process::Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A fresh per-test scratch directory.
fn tmp(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("deft-supervisor-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn supervised_output_is_byte_identical_across_worker_counts() {
    let serial = run(&["--quick", "--out", "csv", "table1"], None);
    assert!(serial.status.success());
    assert!(!serial.stdout.is_empty());
    for workers in ["1", "2", "4"] {
        let sup = run(
            &["--quick", "--out", "csv", "--workers", workers, "table1"],
            None,
        );
        assert!(sup.status.success(), "--workers {workers} failed");
        assert_eq!(
            serial.stdout, sup.stdout,
            "--workers {workers} diverged from the in-process oracle"
        );
        assert!(
            !stderr_of(&sup).contains("quarantined"),
            "fault-free run must not quarantine"
        );
    }

    let serial = run(&["--quick", "--out", "csv", "rho"], None);
    let sup = run(&["--quick", "--out", "csv", "--workers", "3", "rho"], None);
    assert!(serial.status.success() && sup.status.success());
    assert_eq!(serial.stdout, sup.stdout, "rho diverged under supervision");
}

/// One failure per class, all within the retry budget: every cell is
/// retried on a fresh worker and the merged output stays byte-identical.
/// `exit-7` and `kill9` kill the worker outright, `crash` aborts,
/// `garble` answers with a non-container frame, `panic` reports a caught
/// panic over the pipe — five distinct detection paths, one outcome.
#[test]
fn every_failure_class_is_retried_without_changing_output() {
    let serial = run(&["--quick", "--out", "csv", "table1"], None);
    assert!(serial.status.success());
    let plan = "0:0:exit-7;1:0:kill9;2:0:crash;3:0:garble;4:0:panic";
    let sup = run(
        &["--quick", "--out", "csv", "--workers", "3", "table1"],
        Some(plan),
    );
    assert!(sup.status.success(), "stderr: {}", stderr_of(&sup));
    assert_eq!(serial.stdout, sup.stdout, "retries changed the output");
    assert!(
        !stderr_of(&sup).contains("quarantined"),
        "single failures must stay within the retry budget: {}",
        stderr_of(&sup)
    );
}

#[test]
fn hung_workers_are_reaped_by_the_cell_deadline() {
    let serial = run(&["--quick", "--out", "csv", "table1"], None);
    let sup = run(
        &[
            "--quick",
            "--out",
            "csv",
            "--workers",
            "2",
            "--cell-timeout",
            "500",
            "table1",
        ],
        Some("2:0:hang"),
    );
    assert!(sup.status.success(), "stderr: {}", stderr_of(&sup));
    assert_eq!(
        serial.stdout, sup.stdout,
        "the reaped cell's retry diverged"
    );
}

/// A cell that kills two distinct workers is quarantined: the campaign
/// still completes (every healthy cell identical to the oracle, the
/// poison cell's row holding defaults), exit stays 0 without
/// `--strict-cells` and becomes 3 with it.
#[test]
fn poison_cells_quarantine_and_strict_cells_gates_the_exit_code() {
    let serial = run(&["--quick", "--out", "csv", "table1"], None);
    let plan = "1:0:crash;1:1:crash";
    let sup = run(
        &["--quick", "--out", "csv", "--workers", "2", "table1"],
        Some(plan),
    );
    assert!(sup.status.success(), "quarantine must not fail the run");
    let err = stderr_of(&sup);
    assert!(
        err.contains("quarantined: campaign \"table1\" cell 1"),
        "missing quarantine report: {err:?}"
    );
    assert!(
        err.contains("attempt 0:") && err.contains("attempt 1:"),
        "report must list every attempt: {err:?}"
    );
    let serial_out = stdout_of(&serial);
    let serial_lines: Vec<&str> = serial_out.lines().collect();
    let sup_out = stdout_of(&sup);
    let sup_lines: Vec<&str> = sup_out.lines().collect();
    assert_eq!(serial_lines.len(), sup_lines.len(), "row count must match");
    // Cell 1 is stdout line 3 (`#` title, CSV header, then one line per
    // cell): defaults there, byte-identical rows everywhere else.
    for (i, (s, p)) in serial_lines.iter().zip(&sup_lines).enumerate() {
        if i == 3 {
            assert_ne!(s, p, "the poison row must hold defaults");
            assert!(p.ends_with(",0,0,0,0"), "placeholder row: {p:?}");
        } else {
            assert_eq!(s, p, "healthy row {i} diverged");
        }
    }

    let strict = run(
        &[
            "--quick",
            "--out",
            "csv",
            "--workers",
            "2",
            "--strict-cells",
            "table1",
        ],
        Some(plan),
    );
    assert_eq!(
        strict.status.code(),
        Some(3),
        "--strict-cells must exit 3 on quarantine"
    );
    assert_eq!(
        sup.stdout, strict.stdout,
        "--strict-cells changes the exit code, not the output"
    );

    // Without the plan the same flags exit 0: strictness alone is free.
    let clean = run(
        &[
            "--quick",
            "--out",
            "csv",
            "--workers",
            "2",
            "--strict-cells",
            "table1",
        ],
        None,
    );
    assert!(clean.status.success());
    assert_eq!(serial.stdout, clean.stdout);
}

/// A malformed fault plan is a configuration error, failed fast before
/// any worker spawns — not a retry storm.
#[test]
fn malformed_fault_plans_fail_fast() {
    for bad in ["bogus", "1:0:sabotage", "x:0:crash", "1:0:exit-x"] {
        let out = run(&["--quick", "--workers", "2", "table1"], Some(bad));
        assert_eq!(
            out.status.code(),
            Some(1),
            "plan {bad:?} must exit 1: {}",
            stderr_of(&out)
        );
        assert!(
            stderr_of(&out).contains("invalid DEFT_WORKER_FAULT_PLAN"),
            "plan {bad:?}: {}",
            stderr_of(&out)
        );
        assert!(out.stdout.is_empty(), "no output before the error");
    }
}

/// The supervisor absorbs each worker's cache-counter delta, so the
/// stderr summary under `--workers N` reports the same totals as the
/// in-process path — cold and warm.
#[test]
fn cache_summaries_aggregate_worker_counters() {
    let dir = tmp("cache-agg");
    let dir_s = dir.to_str().expect("utf8 temp dir");
    let cold = run(
        &[
            "--quick",
            "--out",
            "csv",
            "--cache",
            dir_s,
            "--workers",
            "2",
            "rho",
        ],
        None,
    );
    assert!(cold.status.success(), "stderr: {}", stderr_of(&cold));
    assert!(
        stderr_of(&cold).contains("cache: 0 hits, 5 misses (0 corrupt), 5 simulated, 5 stored"),
        "cold summary must aggregate worker counters: {}",
        stderr_of(&cold)
    );
    let warm = run(
        &[
            "--quick",
            "--out",
            "csv",
            "--cache",
            dir_s,
            "--workers",
            "2",
            "rho",
        ],
        None,
    );
    assert!(warm.status.success());
    assert!(
        stderr_of(&warm).contains("cache: 5 hits, 0 misses (0 corrupt), 0 simulated, 0 stored"),
        "warm summary must aggregate worker counters: {}",
        stderr_of(&warm)
    );
    assert_eq!(cold.stdout, warm.stdout);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Flag combinations that cannot mean anything are usage errors (exit
/// 2), reported before any work happens.
#[test]
fn incoherent_supervision_flags_are_usage_errors() {
    for args in [
        &["--workers", "2", "perf"][..],          // not campaign-backed
        &["--workers", "2", "checkpoint"][..],    // not campaign-backed
        &["--cell-timeout", "100", "table1"][..], // deadline without workers
        &["worker", "--exp", "table1"][..],       // worker without ordinal
        &["--serve-campaign", "0", "table1"][..], // ordinal without worker
        &["--workers", "x", "table1"][..],        // non-numeric count
    ] {
        let out = run(args, None);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{args:?} must be a usage error: {}",
            stderr_of(&out)
        );
    }
}
