//! Differential correctness of the content-addressed campaign result
//! store (`deft::campaign::store`).
//!
//! The uncached engine is the permanent oracle: every property here runs
//! the same experiment with and without a [`CacheStore`] and demands
//! byte-identical results — on a cold store (all misses), a warm store
//! (all hits), partially-overlapping sweeps (exact hit/miss counts), and
//! stores whose entries have been flipped, truncated, or re-tagged
//! (typed errors, counted as corrupt, healed by re-simulation). The CLI
//! surface (`deft-repro --cache/--no-cache`) is exercised end to end,
//! including the unusable-directory exit path.

use deft::campaign::store::verify_entry;
use deft::campaign::CacheStore;
use deft::experiments::{
    fig4, recovery_scenarios, recovery_with, rho_ablation_cached, Algo, ExpConfig, SynPattern,
    RHO_SWEEP,
};
use deft::report::latency_sweep_csv;
use deft_codec::fingerprint_value;
use deft_topo::ChipletSystem;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

/// Simulation windows small enough for matrix and property-test case
/// counts, large enough that every cell delivers packets.
fn fast_cfg() -> ExpConfig {
    let mut cfg = ExpConfig::quick();
    cfg.sim.warmup = 50;
    cfg.sim.measure = 300;
    cfg.sim.drain = 5_000;
    cfg
}

/// A fresh per-test store directory (removed up front so reruns after a
/// failure start clean; tests clean up on success).
fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("deft-cache-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Cold population then three warm re-runs across jobs {1,4} x
/// tick_threads {1,2}, all against ONE store: the first combination
/// misses every cell, every later combination is answered entirely from
/// disk (proving worker counts are excluded from cache keys), and every
/// combination is byte-identical to the uncached serial oracle.
#[test]
fn cold_then_warm_matrix_is_byte_identical_and_all_hits() {
    let dir = tmp("matrix");
    let sys = ChipletSystem::baseline_4();
    let rates = [0.002, 0.004];
    let algos = [
        Algo::Deft,
        Algo::DeftDis,
        Algo::DeftRan,
        Algo::Mtr,
        Algo::Rc,
    ];
    let base = fast_cfg();
    let horizon = base.sim.warmup + base.sim.measure;
    let scenario = [recovery_scenarios(horizon)[0]];

    // The permanent oracle: the uncached, fully serial engine.
    let oracle_cfg = base.clone().with_jobs(1);
    let o_fig4 = fig4(&sys, SynPattern::Uniform, &rates, &algos, &oracle_cfg);
    let o_rec = recovery_with(&sys, &scenario, 1, &oracle_cfg);
    let o_rho = rho_ablation_cached(&sys, 1, None);

    let store = Arc::new(CacheStore::open(&dir).expect("open store"));
    let cells = (rates.len() * algos.len() + o_rec.len() + RHO_SWEEP.len()) as u64;
    for (i, (jobs, ticks)) in [(1usize, 1usize), (4, 1), (1, 2), (4, 2)]
        .iter()
        .enumerate()
    {
        let cfg = base
            .clone()
            .with_jobs(*jobs)
            .with_tick_threads(*ticks)
            .with_cache(Arc::clone(&store));
        let sweep = fig4(&sys, SynPattern::Uniform, &rates, &algos, &cfg);
        let rec = recovery_with(&sys, &scenario, 1, &cfg);
        let rho = rho_ablation_cached(&sys, cfg.jobs, cfg.cache_store());
        assert_eq!(
            latency_sweep_csv(&o_fig4),
            latency_sweep_csv(&sweep),
            "cached fig4 diverged from the uncached oracle (jobs={jobs}, tick={ticks})"
        );
        assert_eq!(
            fingerprint_value(&o_rec),
            fingerprint_value(&rec),
            "cached recovery diverged from the uncached oracle (jobs={jobs}, tick={ticks})"
        );
        assert_eq!(
            fingerprint_value(&o_rho),
            fingerprint_value(&rho),
            "cached rho ablation diverged from the uncached oracle (jobs={jobs}, tick={ticks})"
        );
        let s = store.stats();
        assert_eq!(s.corrupt, 0);
        assert_eq!(
            s.misses, cells,
            "only the cold pass may simulate (jobs={jobs}, tick={ticks})"
        );
        assert_eq!(s.stored, cells);
        assert_eq!(
            s.hits,
            cells * i as u64,
            "every warm pass must be answered entirely from the store \
             (jobs={jobs}, tick={ticks})"
        );
    }
    assert_eq!(store.entries().expect("list").len(), cells as usize);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Mutating any single input field — rate, pattern, algorithm, seed,
/// topology dims — derives a distinct key: none of the variants hit the
/// baseline's entry, each creates its own, and the untouched baseline
/// still hits afterwards.
#[test]
fn any_single_field_mutation_is_a_distinct_key_and_a_miss() {
    let dir = tmp("sensitivity");
    let sys4 = ChipletSystem::baseline_4();
    let sys6 = ChipletSystem::baseline_6();
    let base = fast_cfg().with_jobs(1);
    let store = Arc::new(CacheStore::open(&dir).expect("open store"));
    let cached = |cfg: &ExpConfig| cfg.clone().with_cache(Arc::clone(&store));

    let _ = fig4(
        &sys4,
        SynPattern::Uniform,
        &[0.004],
        &[Algo::Deft],
        &cached(&base),
    );
    assert_eq!((store.stats().hits, store.stats().misses), (0, 1));

    let mut reseeded = base.clone();
    reseeded.seed ^= 1;
    let variants: [(&str, &ChipletSystem, SynPattern, f64, Algo, &ExpConfig); 5] = [
        ("rate", &sys4, SynPattern::Uniform, 0.005, Algo::Deft, &base),
        (
            "pattern",
            &sys4,
            SynPattern::Localized,
            0.004,
            Algo::Deft,
            &base,
        ),
        (
            "algorithm",
            &sys4,
            SynPattern::Uniform,
            0.004,
            Algo::Mtr,
            &base,
        ),
        (
            "seed",
            &sys4,
            SynPattern::Uniform,
            0.004,
            Algo::Deft,
            &reseeded,
        ),
        (
            "topology",
            &sys6,
            SynPattern::Uniform,
            0.004,
            Algo::Deft,
            &base,
        ),
    ];
    for (field, sys, pattern, rate, algo, cfg) in variants {
        let before = store.stats();
        let _ = fig4(sys, pattern, &[rate], &[algo], &cached(cfg));
        let after = store.stats();
        assert_eq!(
            after.hits, before.hits,
            "mutating {field} must not hit the baseline entry"
        );
        assert_eq!(
            after.misses,
            before.misses + 1,
            "mutating {field} must miss"
        );
    }
    // Five mutations -> five new entries: every key was distinct.
    assert_eq!(store.entries().expect("list").len(), 6);
    // The untouched baseline cell still hits, so the misses above were
    // key sensitivity, not a broken store.
    let _ = fig4(
        &sys4,
        SynPattern::Uniform,
        &[0.004],
        &[Algo::Deft],
        &cached(&base),
    );
    assert_eq!(store.stats().hits, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The recovery grid's scenario field is part of the key: a different
/// scenario misses everything, the original hits everything.
#[test]
fn recovery_scenario_mutation_misses() {
    let dir = tmp("scenario");
    let sys = ChipletSystem::baseline_4();
    let base = fast_cfg().with_jobs(1);
    let horizon = base.sim.warmup + base.sim.measure;
    let scenarios = recovery_scenarios(horizon);
    assert!(scenarios.len() >= 2);

    let store = Arc::new(CacheStore::open(&dir).expect("open store"));
    let cached = base.clone().with_cache(Arc::clone(&store));
    let cells = recovery_with(&sys, &scenarios[..1], 1, &cached).len() as u64;
    assert_eq!(store.stats().misses, cells);

    let _ = recovery_with(&sys, &scenarios[1..2], 1, &cached);
    let s = store.stats();
    assert_eq!(s.hits, 0, "a mutated scenario must not hit");
    assert_eq!(s.misses, 2 * cells);

    let _ = recovery_with(&sys, &scenarios[..1], 1, &cached);
    assert_eq!(store.stats().hits, cells, "the original scenario must hit");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Partially-overlapping sweeps re-simulate only the new cells — exact
/// hit/miss accounting across store instances (entries persist on disk)
/// — and the widened sweep matches the uncached oracle byte for byte.
#[test]
fn partial_overlap_only_simulates_new_cells() {
    let dir = tmp("overlap");
    let sys = ChipletSystem::baseline_4();
    {
        let store = Arc::new(CacheStore::open(&dir).expect("open store"));
        let cfg = fast_cfg().with_jobs(2).with_cache(Arc::clone(&store));
        let _ = fig4(
            &sys,
            SynPattern::Uniform,
            &[0.002, 0.004],
            &Algo::MAIN,
            &cfg,
        );
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.stored), (0, 6, 6));
    }
    let store = Arc::new(CacheStore::open(&dir).expect("reopen store"));
    let cfg = fast_cfg().with_jobs(2).with_cache(Arc::clone(&store));
    let wide = fig4(
        &sys,
        SynPattern::Uniform,
        &[0.002, 0.004, 0.006],
        &Algo::MAIN,
        &cfg,
    );
    let s = store.stats();
    assert_eq!(
        (s.hits, s.misses, s.stored),
        (6, 3, 3),
        "only the new rate's three cells may simulate"
    );
    let oracle = fig4(
        &sys,
        SynPattern::Uniform,
        &[0.002, 0.004, 0.006],
        &Algo::MAIN,
        &fast_cfg().with_jobs(1),
    );
    assert_eq!(latency_sweep_csv(&oracle), latency_sweep_csv(&wide));
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any single-byte flip or truncation of a stored entry yields a
    /// typed [`CodecError`] from the fsck primitive, is counted as a
    /// corrupt miss by the probing campaign, and is healed by
    /// re-simulation to a byte-identical result — never a panic, never
    /// a silently-accepted altered payload.
    #[test]
    fn corrupted_entries_degrade_to_typed_misses(
        flip_at in 0usize..30_000,
        flip_mask in 1u8..=255,
        cut in 0usize..30_000,
        which in 0usize..1_000,
    ) {
        let dir = tmp(&format!("fuzz-{flip_at}-{flip_mask}-{cut}"));
        let sys = ChipletSystem::baseline_4();
        let oracle = rho_ablation_cached(&sys, 1, None);

        let store = CacheStore::open(&dir).expect("open store");
        let _ = rho_ablation_cached(&sys, 1, Some(&store));
        let entries = store.entries().expect("list");
        prop_assert_eq!(entries.len(), RHO_SWEEP.len());
        let victim = &entries[which % entries.len()];
        let clean = std::fs::read(victim).expect("read entry");

        // Flip one byte anywhere in the entry.
        let mut flipped = clean.clone();
        let at = flip_at % flipped.len();
        flipped[at] ^= flip_mask;
        std::fs::write(victim, &flipped).expect("write corrupted entry");
        let err = verify_entry(victim).expect_err("flipped byte must not verify");
        prop_assert!(!format!("{err}").is_empty());
        let store = CacheStore::open(&dir).expect("reopen store");
        let healed = rho_ablation_cached(&sys, 1, Some(&store));
        prop_assert_eq!(fingerprint_value(&healed), fingerprint_value(&oracle));
        let s = store.stats();
        prop_assert_eq!((s.hits, s.misses, s.corrupt), ((RHO_SWEEP.len() - 1) as u64, 1, 1));
        prop_assert!(verify_entry(victim).is_ok(), "re-simulation must overwrite the bad entry");

        // Truncate the entry at an arbitrary point (possibly to empty).
        std::fs::write(victim, &clean[..cut % clean.len()]).expect("truncate entry");
        prop_assert!(verify_entry(victim).is_err(), "truncated entry must not verify");
        let store = CacheStore::open(&dir).expect("reopen store");
        let healed = rho_ablation_cached(&sys, 1, Some(&store));
        prop_assert_eq!(fingerprint_value(&healed), fingerprint_value(&oracle));
        prop_assert_eq!(store.stats().corrupt, 1);

        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Re-tagging a section (both the key and the body tag) is detected by
/// the entry's structural verification and degrades to a healed miss,
/// exactly like a bit flip.
#[test]
fn retagged_sections_are_rejected_and_resimulated() {
    let sys = ChipletSystem::baseline_4();
    let oracle = rho_ablation_cached(&sys, 1, None);
    for tag in [&b"CKEY"[..], &b"BODY"[..]] {
        let dir = tmp(&format!("retag-{}", tag[0] as char));
        let store = CacheStore::open(&dir).expect("open store");
        let _ = rho_ablation_cached(&sys, 1, Some(&store));
        let victim = store.entries().expect("list")[0].clone();
        let mut bytes = std::fs::read(&victim).expect("read entry");
        let at = bytes
            .windows(tag.len())
            .position(|w| w == tag)
            .expect("entry embeds the section tag");
        bytes[at..at + tag.len()].reverse();
        std::fs::write(&victim, &bytes).expect("re-tag entry");
        assert!(
            verify_entry(&victim).is_err(),
            "re-tagged entry must not verify"
        );
        let store = CacheStore::open(&dir).expect("reopen store");
        let healed = rho_ablation_cached(&sys, 1, Some(&store));
        assert_eq!(fingerprint_value(&healed), fingerprint_value(&oracle));
        assert_eq!(store.stats().corrupt, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// `deft-repro --cache DIR` memoizes across process invocations: the
/// second run's stdout is byte-identical, its stderr summary reports
/// zero simulated cells, and `--no-cache` suppresses the store entirely.
#[test]
fn repro_cache_flag_memoizes_across_invocations() {
    let dir = tmp("cli");
    let run = |extra: &[&str]| {
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_deft-repro"))
            .args(["rho", "--quick", "--out", "csv", "--cache"])
            .arg(&dir)
            .args(extra)
            .output()
            .expect("deft-repro runs");
        assert!(out.status.success());
        (
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    };
    let (cold_out, cold_err) = run(&[]);
    let (warm_out, warm_err) = run(&[]);
    assert_eq!(cold_out, warm_out, "warm stdout must be byte-identical");
    assert!(
        cold_err.contains("cache: 0 hits, 5 misses (0 corrupt), 5 simulated"),
        "cold summary missing: {cold_err:?}"
    );
    assert!(
        warm_err.contains("cache: 5 hits, 0 misses (0 corrupt), 0 simulated"),
        "warm summary missing: {warm_err:?}"
    );
    let (nocache_out, nocache_err) = run(&["--no-cache"]);
    assert_eq!(cold_out, nocache_out);
    assert!(
        !nocache_err.contains("cache:"),
        "--no-cache must suppress the store: {nocache_err:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two *processes* racing the same corrupted entry both degrade it to a
/// typed miss, re-simulate, and heal through the store's atomic rename:
/// neither ever observes a torn entry (a torn read would surface as a
/// second corruption or a decode panic), both produce byte-identical
/// output, and the entry verifies afterwards. This is the multi-process
/// contract `--workers N` relies on when its workers share one store.
#[test]
fn racing_processes_heal_a_corrupt_entry_without_torn_reads() {
    let dir = tmp("race");
    let sys = ChipletSystem::baseline_4();
    let store = CacheStore::open(&dir).expect("open store");
    let _ = rho_ablation_cached(&sys, 1, Some(&store));
    let victim = store.entries().expect("list")[0].clone();
    let mut bytes = std::fs::read(&victim).expect("read entry");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xA5;
    std::fs::write(&victim, &bytes).expect("corrupt entry");

    let spawn = || {
        std::process::Command::new(env!("CARGO_BIN_EXE_deft-repro"))
            .args(["rho", "--quick", "--out", "csv", "--cache"])
            .arg(&dir)
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::piped())
            .spawn()
            .expect("spawn deft-repro")
    };
    let (a, b) = (spawn(), spawn());
    let a = a.wait_with_output().expect("child a");
    let b = b.wait_with_output().expect("child b");
    assert!(
        a.status.success() && b.status.success(),
        "racing healers must both succeed: {:?} / {:?}",
        String::from_utf8_lossy(&a.stderr),
        String::from_utf8_lossy(&b.stderr)
    );
    assert_eq!(
        a.stdout, b.stdout,
        "racing healers must agree byte for byte"
    );
    // Whichever child probes first sees the corruption; the other sees
    // either the same corrupt bytes (both still racing) or the winner's
    // healed entry (a hit) — but never a torn state in between.
    let mut corrupt_observers = 0;
    for (name, err) in [("a", &a.stderr), ("b", &b.stderr)] {
        let err = String::from_utf8_lossy(err);
        if err.contains("(1 corrupt), 1 simulated") {
            corrupt_observers += 1;
        } else {
            assert!(
                err.contains("cache: 5 hits, 0 misses (0 corrupt), 0 simulated"),
                "child {name} saw a state that is neither corrupt nor healed: {err:?}"
            );
        }
    }
    assert!(
        corrupt_observers >= 1,
        "at least the first prober must observe the corruption"
    );
    assert!(
        verify_entry(&victim).is_ok(),
        "the healed entry must verify after the race"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// An unusable `--cache` location is a clean one-line exit-1 error (the
/// same contract as a corrupt `--resume` file), not a panic.
#[test]
fn repro_rejects_unusable_cache_dir_cleanly() {
    // A regular file where the directory should be: `create_dir_all`
    // fails even for root, unlike permission-based read-only dirs.
    let blocker = std::env::temp_dir().join(format!("deft-cache-blocker-{}", std::process::id()));
    std::fs::write(&blocker, b"file in the way").expect("write blocker");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_deft-repro"))
        .args(["rho", "--quick", "--cache"])
        .arg(blocker.join("store"))
        .output()
        .expect("deft-repro runs");
    let _ = std::fs::remove_file(&blocker);
    assert_eq!(out.status.code(), Some(1), "unusable cache must exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot open cache"),
        "missing error line: {stderr:?}"
    );
    assert!(!stderr.contains("panicked"), "must not panic: {stderr:?}");
    assert!(
        out.stdout.is_empty(),
        "no experiment output before the error"
    );
}
