//! Smoke tests for the `deft-repro` reproduction harness: the library entry
//! on a tiny configuration, and the compiled binary end to end.

use deft::prelude::*;
use std::process::Command;

/// Tiny-but-real run through the library entry the binary uses: baseline_4,
/// short warmup/measure, DeFT routing, light uniform load.
#[test]
fn library_entry_delivers_without_deadlock() {
    let sys = ChipletSystem::baseline_4();
    let pattern = uniform(&sys, 0.003);
    let cfg = SimConfig {
        warmup: 200,
        measure: 1_000,
        drain: 15_000,
        ..SimConfig::default()
    };
    let report = Simulator::new(
        &sys,
        FaultState::none(&sys),
        Box::new(DeftRouting::new(&sys)),
        &pattern,
        cfg,
    )
    .run();
    assert!(!report.deadlocked, "tiny baseline_4 run deadlocked");
    assert!(
        report.delivered > 0,
        "tiny baseline_4 run delivered nothing"
    );
    assert_eq!(report.dropped_unroutable, 0);
}

/// The compiled `deft-repro` binary runs a fast experiment and prints its
/// report table.
#[test]
fn repro_binary_runs_table1() {
    let out = Command::new(env!("CARGO_BIN_EXE_deft-repro"))
        .args(["--quick", "table1"])
        .output()
        .expect("deft-repro binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("Table I"),
        "missing Table I header in:\n{stdout}"
    );
}

/// `--out csv` emits a machine-readable block (comment-prefixed title +
/// CSV header), and `--jobs` is accepted in both `--jobs N` and
/// `--jobs=N` spellings.
#[test]
fn repro_binary_emits_csv_with_jobs() {
    let out = Command::new(env!("CARGO_BIN_EXE_deft-repro"))
        .args(["--quick", "--jobs", "2", "--out", "csv", "table1"])
        .output()
        .expect("deft-repro binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("# Table I"), "got:\n{stdout}");
    assert!(
        stdout.contains("variant,area_um2,norm_area,power_mw,norm_power"),
        "missing CSV header in:\n{stdout}"
    );

    let eq = Command::new(env!("CARGO_BIN_EXE_deft-repro"))
        .args(["--quick", "--jobs=2", "--out=csv", "table1"])
        .output()
        .expect("deft-repro binary runs");
    assert_eq!(out.stdout, eq.stdout, "--flag=value spelling diverged");
}

/// Bad flag values fail loudly with the usage message.
#[test]
fn repro_binary_rejects_bad_jobs_value() {
    let out = Command::new(env!("CARGO_BIN_EXE_deft-repro"))
        .args(["--jobs", "zero", "table1"])
        .output()
        .expect("deft-repro binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--jobs"), "stderr was:\n{stderr}");
}

/// Unknown experiment names are rejected with a usage message and exit
/// code 2 (so typos in scripts fail loudly, not silently).
#[test]
fn repro_binary_rejects_unknown_experiment() {
    let out = Command::new(env!("CARGO_BIN_EXE_deft-repro"))
        .arg("fig99")
        .output()
        .expect("deft-repro binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "stderr was:\n{stderr}");
}
