//! Property-based invariants of the reachability engine and fault model.

use deft::prelude::*;
use deft_routing::reachability::ReachabilityEngine;
use deft_topo::{FaultScenarios, ScenarioSampler};
use proptest::prelude::*;

fn arb_fault_state(max_faults: usize) -> impl Strategy<Value = Vec<(u8, u8, bool)>> {
    prop::collection::vec((0u8..4, 0u8..4, prop::bool::ANY), 0..=max_faults)
}

fn to_state(sys: &ChipletSystem, raw: &[(u8, u8, bool)]) -> FaultState {
    let mut f = FaultState::none(sys);
    for &(c, i, down) in raw {
        f.inject(VlLinkId {
            chiplet: ChipletId(c),
            index: i,
            dir: if down { VlDir::Down } else { VlDir::Up },
        });
    }
    f
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn deft_reaches_everything_unless_disconnected(raw in arb_fault_state(10)) {
        let sys = ChipletSystem::baseline_4();
        let faults = to_state(&sys, &raw);
        let engine = ReachabilityEngine::new(&sys, &DeftRouting::distance_based(&sys));
        let r = engine.reachability_under(&sys, &faults);
        if faults.disconnects_any_chiplet(&sys) {
            prop_assert!(r < 1.0);
        } else {
            prop_assert_eq!(r, 1.0);
        }
    }

    #[test]
    fn reachability_is_a_probability(raw in arb_fault_state(12)) {
        let sys = ChipletSystem::baseline_4();
        let faults = to_state(&sys, &raw);
        for alg in [
            Box::new(DeftRouting::distance_based(&sys)) as Box<dyn RoutingAlgorithm>,
            Box::new(MtrRouting::new(&sys)),
            Box::new(RcRouting::new(&sys)),
        ] {
            let engine = ReachabilityEngine::new(&sys, alg.as_ref());
            let r = engine.reachability_under(&sys, &faults);
            prop_assert!((0.0..=1.0).contains(&r), "{} returned {}", alg.name(), r);
        }
    }

    #[test]
    fn more_faults_never_help(raw in arb_fault_state(8), extra_c in 0u8..4, extra_i in 0u8..4) {
        let sys = ChipletSystem::baseline_4();
        let faults = to_state(&sys, &raw);
        let mut more = faults.clone();
        more.inject(VlLinkId { chiplet: ChipletId(extra_c), index: extra_i, dir: VlDir::Down });
        let engine = ReachabilityEngine::new(&sys, &MtrRouting::new(&sys));
        prop_assert!(
            engine.reachability_under(&sys, &more)
                <= engine.reachability_under(&sys, &faults) + 1e-12
        );
    }

    #[test]
    fn routability_matches_on_inject(raw in arb_fault_state(6), src_i in 0u32..128, dst_i in 0u32..128) {
        // The eligibility-based routability predicate must agree with what
        // on_inject actually does.
        prop_assume!(src_i != dst_i);
        let sys = ChipletSystem::baseline_4();
        let faults = to_state(&sys, &raw);
        let (src, dst) = (NodeId(src_i), NodeId(dst_i));
        for mut alg in [
            Box::new(DeftRouting::distance_based(&sys)) as Box<dyn RoutingAlgorithm>,
            Box::new(MtrRouting::new(&sys)),
            Box::new(RcRouting::new(&sys)),
        ] {
            let predicted = alg.eligibility(&sys, src, dst).routable(&faults, &sys);
            let actual = alg.on_inject(&sys, &faults, src, dst, 0).is_ok();
            prop_assert_eq!(predicted, actual, "{} disagrees for {} -> {}", alg.name(), src, dst);
        }
    }
}

#[test]
fn average_is_bounded_by_best_and_worst_scenarios() {
    let sys = ChipletSystem::baseline_4();
    let engine = ReachabilityEngine::new(&sys, &MtrRouting::new(&sys));
    for k in 1..=6 {
        let avg = engine.average(k);
        let worst = engine.worst_case(k);
        assert!(worst <= avg + 1e-12, "k={k}: worst {worst} > avg {avg}");
        assert!(avg <= 1.0);
    }
}

#[test]
fn monte_carlo_converges_to_exact_average() {
    let sys = ChipletSystem::baseline_4();
    for alg in [
        Box::new(MtrRouting::new(&sys)) as Box<dyn RoutingAlgorithm>,
        Box::new(RcRouting::new(&sys)),
    ] {
        let engine = ReachabilityEngine::new(&sys, alg.as_ref());
        for k in [3usize, 6] {
            let exact = engine.average(k);
            let mc = engine.monte_carlo(&sys, k, 3_000, 17);
            assert!(
                (exact - mc).abs() < 0.01,
                "{} k={k}: exact {exact} vs MC {mc}",
                alg.name()
            );
        }
    }
}

#[test]
fn scenario_counts_agree_between_topo_and_engine() {
    let sys = ChipletSystem::baseline_4();
    let engine = ReachabilityEngine::new(&sys, &MtrRouting::new(&sys));
    for k in 1..=5 {
        assert_eq!(
            engine.admissible_scenarios(k),
            FaultScenarios::new(&sys, k).count_admissible(),
        );
    }
}

#[test]
fn sampler_reachability_matches_reachability_under() {
    let sys = ChipletSystem::baseline_4();
    let engine = ReachabilityEngine::new(&sys, &RcRouting::new(&sys));
    let mut sampler = ScenarioSampler::new(&sys, 5, 3);
    for _ in 0..20 {
        let state = sampler.sample(&sys);
        let r = engine.reachability_under(&sys, &state);
        assert!((0.0..=1.0).contains(&r));
        assert!(!state.disconnects_any_chiplet(&sys));
    }
}
