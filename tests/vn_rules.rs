//! The paper's Fig. 2 rules, checked on every hop of routed packets:
//! * Rule 1 — never switch VN1 → VN0;
//! * Rule 2 — in VN0, never turn Up → Horizontal;
//! * Rule 3 — in VN1, never turn Horizontal → Down;
//!
//! plus minimality (livelock freedom) and Algorithm 1's assignment cases.

use deft::prelude::*;
use deft_topo::Direction;

/// Walks a packet through `alg.route` hop by hop, returning
/// `(direction, vn)` per hop.
fn walk(
    sys: &ChipletSystem,
    alg: &mut dyn RoutingAlgorithm,
    faults: &FaultState,
    src: NodeId,
    dst: NodeId,
    seq: u64,
) -> Vec<(Direction, Vn)> {
    let mut ctx = alg.on_inject(sys, faults, src, dst, seq).expect("routable");
    let mut hops = vec![];
    let mut cur = src;
    let mut prev_vn = ctx.vn;
    while cur != dst {
        let d = alg.route(sys, faults, cur, dst, &mut ctx);
        // Rule 1 at the transition granularity.
        assert!(
            prev_vn.may_switch_to(d.vn),
            "Rule 1 violated: {prev_vn} -> {} at {cur}",
            d.vn
        );
        prev_vn = d.vn;
        hops.push((d.dir, d.vn));
        cur = sys.neighbor(cur, d.dir).expect("valid hop");
        assert!(hops.len() < 200, "runaway route {src} -> {dst}");
    }
    hops
}

fn check_rules(hops: &[(Direction, Vn)], label: &str) {
    for w in hops.windows(2) {
        let (d_in, vn_in) = w[0];
        let (d_out, vn_out) = w[1];
        // vn_in is the VN of the buffer the flit sits in when taking the
        // turn to d_out.
        if vn_in == Vn::Vn0 {
            assert!(
                !(d_in == Direction::Up && d_out.is_horizontal()),
                "{label}: Rule 2 violated (Up -> horizontal in VN0)"
            );
        }
        if vn_in == Vn::Vn1 {
            assert!(
                !(d_in.is_horizontal() && d_out == Direction::Down),
                "{label}: Rule 3 violated (horizontal -> Down in VN1)"
            );
        }
        let _ = vn_out;
    }
}

#[test]
fn deft_obeys_all_three_rules_on_every_flow() {
    let sys = ChipletSystem::baseline_4();
    let faults = FaultState::none(&sys);
    let mut deft = DeftRouting::new(&sys);
    // All flows from a sample of sources to every destination.
    let sources: Vec<NodeId> = sys.nodes().step_by(7).collect();
    for &src in &sources {
        for dst in sys.nodes() {
            if src == dst {
                continue;
            }
            for seq in 0..2 {
                let hops = walk(&sys, &mut deft, &faults, src, dst, seq);
                check_rules(&hops, "DeFT");
            }
        }
    }
}

#[test]
fn deft_obeys_the_rules_under_faults() {
    let sys = ChipletSystem::baseline_4();
    let mut faults = FaultState::none(&sys);
    for (c, i, d) in [
        (0u8, 0u8, VlDir::Down),
        (1, 1, VlDir::Up),
        (2, 2, VlDir::Down),
        (3, 3, VlDir::Up),
    ] {
        faults.inject(VlLinkId {
            chiplet: ChipletId(c),
            index: i,
            dir: d,
        });
    }
    let mut deft = DeftRouting::new(&sys);
    for src in sys.nodes().step_by(11) {
        for dst in sys.nodes().step_by(5) {
            if src == dst {
                continue;
            }
            let hops = walk(&sys, &mut deft, &faults, src, dst, 1);
            check_rules(&hops, "DeFT+faults");
        }
    }
}

#[test]
fn routes_are_minimal_through_the_selected_vls() {
    // Livelock freedom (paper §III-A): every packet is routed minimally via
    // its two intermediate destinations.
    let sys = ChipletSystem::baseline_4();
    let faults = FaultState::none(&sys);
    let mut deft = DeftRouting::new(&sys);
    for src in sys.nodes().step_by(13) {
        for dst in sys.nodes().step_by(9) {
            if src == dst {
                continue;
            }
            let ctx = deft.on_inject(&sys, &faults, src, dst, 0).unwrap();
            let hops = walk(&sys, &mut deft, &faults, src, dst, 0);
            let bound = match (sys.chiplet_of(src), sys.chiplet_of(dst)) {
                (Some(a), Some(b)) if a != b => {
                    let down = &sys.chiplet(a).vertical_links()[ctx.down_vl.unwrap() as usize];
                    let up = &sys.chiplet(b).vertical_links()[ctx.up_vl.unwrap() as usize];
                    sys.inter_chiplet_hops(src, down, up, dst)
                }
                _ => {
                    // Same layer: manhattan; chiplet<->interposer: loose
                    // bound via system diameter.
                    sys.same_layer_distance(src, dst).unwrap_or(40)
                }
            };
            assert!(
                hops.len() as u32 <= bound,
                "non-minimal: {src} -> {dst} took {} hops (bound {bound})",
                hops.len()
            );
        }
    }
}

#[test]
fn algorithm_1_source_assignment_cases() {
    let sys = ChipletSystem::baseline_4();
    let faults = FaultState::none(&sys);
    let mut deft = DeftRouting::distance_based(&sys);

    // Interposer source: round-robin.
    let isrc = sys.interposer_nodes().nth(10).unwrap();
    let dst = NodeId(0);
    let v0 = deft.on_inject(&sys, &faults, isrc, dst, 0).unwrap().vn;
    let v1 = deft.on_inject(&sys, &faults, isrc, dst, 1).unwrap().vn;
    assert_ne!(v0, v1, "interposer sources alternate VNs");

    // Intra-chiplet: round-robin.
    let a = NodeId(0);
    let b = NodeId(5);
    let v0 = deft.on_inject(&sys, &faults, a, b, 0).unwrap().vn;
    let v1 = deft.on_inject(&sys, &faults, a, b, 1).unwrap().vn;
    assert_ne!(v0, v1, "intra-chiplet sources alternate VNs");

    // Inter-chiplet from a non-boundary router: always VN0.
    let src = sys
        .chiplet_nodes(ChipletId(0))
        .find(|&n| !sys.is_boundary_router(n))
        .unwrap();
    let far = sys.chiplet_nodes(ChipletId(3)).next().unwrap();
    for seq in 0..4 {
        assert_eq!(
            deft.on_inject(&sys, &faults, src, far, seq).unwrap().vn,
            Vn::Vn0
        );
    }
}

#[test]
fn mtr_and_rc_also_satisfy_the_turn_safety_rules() {
    // The baselines use the same phase discipline inside the simulator, so
    // their hop sequences must satisfy Rules 2 and 3 as well.
    let sys = ChipletSystem::baseline_4();
    let faults = FaultState::none(&sys);
    for mut alg in [
        Box::new(MtrRouting::new(&sys)) as Box<dyn RoutingAlgorithm>,
        Box::new(RcRouting::new(&sys)),
    ] {
        for src in sys.nodes().step_by(17) {
            for dst in sys.nodes().step_by(7) {
                if src == dst {
                    continue;
                }
                let hops = walk(&sys, alg.as_mut(), &faults, src, dst, 0);
                check_rules(&hops, alg.name());
            }
        }
    }
}
