//! Simulation-vs-analysis cross-checks under vertical-link faults.

use deft::prelude::*;
use deft_topo::ScenarioSampler;

fn quick_cfg(seed: u64) -> SimConfig {
    SimConfig {
        warmup: 300,
        measure: 2_000,
        drain: 30_000,
        seed,
        ..SimConfig::default()
    }
}

#[test]
fn simulated_reachability_matches_the_exact_engine() {
    // For random 6-fault scenarios, the fraction of dropped packets in
    // simulation must converge to the engine's exact per-scenario value.
    let sys = ChipletSystem::baseline_4();
    let mut sampler = ScenarioSampler::new(&sys, 6, 21);
    let pattern = uniform(&sys, 0.004);
    for trial in 0..3 {
        let faults = sampler.sample(&sys);
        for algo_name in ["MTR", "RC"] {
            let algo: Box<dyn RoutingAlgorithm> = match algo_name {
                "MTR" => Box::new(MtrRouting::new(&sys)),
                _ => Box::new(RcRouting::new(&sys)),
            };
            let engine = ReachabilityEngine::new(&sys, algo.as_ref());
            let exact = engine.reachability_under(&sys, &faults);
            let report =
                Simulator::new(&sys, faults.clone(), algo, &pattern, quick_cfg(trial)).run();
            let simulated = report.reachability();
            assert!(
                (exact - simulated).abs() < 0.03,
                "{algo_name} trial {trial}: exact {exact} vs simulated {simulated}"
            );
        }
    }
}

#[test]
fn deft_simulated_reachability_is_always_complete() {
    let sys = ChipletSystem::baseline_4();
    let mut sampler = ScenarioSampler::new(&sys, 8, 5);
    let pattern = uniform(&sys, 0.004);
    for trial in 0..3 {
        let faults = sampler.sample(&sys);
        let report = Simulator::new(
            &sys,
            faults,
            Box::new(DeftRouting::new(&sys)),
            &pattern,
            quick_cfg(100 + trial),
        )
        .run();
        assert_eq!(report.dropped_unroutable, 0, "trial {trial}");
        assert!(!report.deadlocked);
    }
}

#[test]
fn fig8_ablation_optimized_selection_beats_distance_based_under_faults() {
    // Fig. 8(a): at a 12.5% fault rate and moderate load, DeFT's optimized
    // selection yields lower latency than distance-based selection, which
    // overloads the VLs nearest the fault (Fig. 3(b)'s effect).
    let sys = ChipletSystem::baseline_4();
    let mut faults = FaultState::none(&sys);
    for c in 0..4u8 {
        faults.inject(VlLinkId {
            chiplet: ChipletId(c),
            index: c,
            dir: VlDir::Down,
        });
    }
    let pattern = uniform(&sys, 0.006);
    let cfg = SimConfig {
        warmup: 500,
        measure: 4_000,
        drain: 40_000,
        ..SimConfig::default()
    };
    let opt = Simulator::new(
        &sys,
        faults.clone(),
        Box::new(DeftRouting::new(&sys)),
        &pattern,
        cfg,
    )
    .run();
    let dis = Simulator::new(
        &sys,
        faults,
        Box::new(DeftRouting::distance_based(&sys)),
        &pattern,
        cfg,
    )
    .run();
    assert!(!opt.deadlocked && !dis.deadlocked);
    assert!(
        opt.avg_latency <= dis.avg_latency * 1.05,
        "optimized {} should not lose to distance-based {}",
        opt.avg_latency,
        dis.avg_latency
    );
}

#[test]
fn vl_loads_are_balanced_by_the_optimizer() {
    // Under uniform traffic with one faulty VL per chiplet, optimized DeFT
    // must spread down-traffic more evenly than distance-based selection.
    let sys = ChipletSystem::baseline_4();
    let mut faults = FaultState::none(&sys);
    for c in 0..4u8 {
        faults.inject(VlLinkId {
            chiplet: ChipletId(c),
            index: 0,
            dir: VlDir::Down,
        });
    }
    let pattern = uniform(&sys, 0.005);
    let cfg = quick_cfg(7);
    let down_spread = |report: &SimReport| -> f64 {
        let downs: Vec<u64> = report
            .vl_flits
            .iter()
            .filter(|((_, _, down), _)| *down)
            .map(|(_, &v)| v)
            .collect();
        let max = *downs.iter().max().unwrap() as f64;
        let min = *downs.iter().min().unwrap() as f64;
        max / min.max(1.0)
    };
    let opt = Simulator::new(
        &sys,
        faults.clone(),
        Box::new(DeftRouting::new(&sys)),
        &pattern,
        cfg,
    )
    .run();
    let dis = Simulator::new(
        &sys,
        faults,
        Box::new(DeftRouting::distance_based(&sys)),
        &pattern,
        cfg,
    )
    .run();
    assert!(
        down_spread(&opt) <= down_spread(&dis) + 0.5,
        "optimized spread {} vs distance spread {}",
        down_spread(&opt),
        down_spread(&dis)
    );
}

#[test]
fn up_and_down_faults_are_independent() {
    // A faulty down link must not stop the up twin from carrying traffic,
    // and vice versa.
    let sys = ChipletSystem::baseline_4();
    let mut faults = FaultState::none(&sys);
    faults.inject(VlLinkId {
        chiplet: ChipletId(0),
        index: 1,
        dir: VlDir::Down,
    });
    faults.inject(VlLinkId {
        chiplet: ChipletId(2),
        index: 3,
        dir: VlDir::Up,
    });
    let pattern = uniform(&sys, 0.005);
    let report = Simulator::new(
        &sys,
        faults,
        Box::new(DeftRouting::new(&sys)),
        &pattern,
        quick_cfg(3),
    )
    .run();
    assert_eq!(report.vl_flits.get(&(0, 1, true)).copied().unwrap_or(0), 0);
    assert!(report.vl_flits.get(&(0, 1, false)).copied().unwrap_or(0) > 0);
    assert_eq!(report.vl_flits.get(&(2, 3, false)).copied().unwrap_or(0), 0);
    assert!(report.vl_flits.get(&(2, 3, true)).copied().unwrap_or(0) > 0);
}
