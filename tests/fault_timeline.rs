//! Acceptance tests for the dynamic fault-timeline engine (the online
//! sequel to the paper's static fault scenarios):
//!
//! 1. the `recovery` experiment renders **byte-identical** reports at
//!    `--jobs 1` and `--jobs 4` (the campaign-determinism contract
//!    extended to timeline-driven runs);
//! 2. DeFT loses strictly fewer packets than RC on the same timeline —
//!    the paper's static-fault claim, mirrored in the dynamic setting;
//! 3. `RoutingAlgorithm::on_fault_change` leaves DeFT deadlock-free: the
//!    channel dependency graph stays acyclic after every transition.

use deft::experiments::{recovery_with, ExpConfig, RecoveryScenario};
use deft::prelude::*;
use deft::report::{recovery_csv, render_recovery};
use deft::topo::PINWHEEL_VLS_4X4;

#[test]
fn recovery_experiment_is_byte_identical_across_job_counts() {
    let sys = ChipletSystem::baseline_4();
    let scenarios = [
        RecoveryScenario::Region { duration: 600 },
        RecoveryScenario::Burst {
            bursts: 1,
            links_per_burst: 4,
            duration: 500,
        },
    ];
    let serial = recovery_with(&sys, &scenarios, 1, &ExpConfig::quick().with_jobs(1));
    let parallel = recovery_with(&sys, &scenarios, 1, &ExpConfig::quick().with_jobs(4));
    assert_eq!(
        render_recovery(&serial),
        render_recovery(&parallel),
        "parallel recovery text report diverged from serial"
    );
    assert_eq!(
        recovery_csv(&serial),
        recovery_csv(&parallel),
        "parallel recovery CSV diverged from serial"
    );
}

#[test]
fn deft_loses_strictly_fewer_packets_than_rc_on_a_dynamic_timeline() {
    let sys = ChipletSystem::baseline_4();
    let rows = recovery_with(
        &sys,
        &[RecoveryScenario::Region { duration: 900 }],
        1,
        &ExpConfig::quick(),
    );
    let losses = |name: &str| {
        let r = rows
            .iter()
            .find(|r| r.algorithm == name)
            .unwrap_or_else(|| panic!("{name} row missing"));
        r.dropped_unroutable + r.lost_in_flight
    };
    assert!(
        losses("DeFT") < losses("RC"),
        "DeFT must recover with strictly fewer dropped packets than RC \
         (DeFT {} vs RC {})",
        losses("DeFT"),
        losses("RC")
    );
    // And its recovery latency is the shortest of the three.
    let rec = |name: &str| {
        rows.iter()
            .find(|r| r.algorithm == name)
            .unwrap()
            .avg_recovery_latency
    };
    assert!(rec("DeFT") <= rec("RC"), "DeFT must also recover faster");
}

#[test]
fn on_fault_change_keeps_deft_deadlock_free_across_transitions() {
    // A 2-chiplet system keeps per-transition CDG construction fast
    // while retaining the cross-chiplet cycle structure of Fig. 1.
    let sys = SystemBuilder::new(8, 4)
        .chiplet(Coord::new(0, 0), 4, 4, &PINWHEEL_VLS_4X4)
        .chiplet(Coord::new(4, 0), 4, 4, &PINWHEEL_VLS_4X4)
        .build()
        .expect("valid 2-chiplet system");
    let timeline = FaultTimeline::transient(
        &sys,
        &TransientConfig {
            mean_healthy: 4_000.0,
            mean_faulty: 1_000.0,
            horizon: 12_000,
            seed: 17,
        },
    );
    assert!(timeline.is_admissible(&sys));
    let mut deft = DeftRouting::distance_based(&sys);
    let transitions: Vec<u64> = timeline.transition_cycles().into_iter().take(12).collect();
    assert!(!transitions.is_empty(), "timeline generated no transitions");
    for cycle in transitions {
        let faults = timeline.state_at(&sys, cycle);
        deft.on_fault_change(&sys, &faults);
        let cdg = ChannelDependencyGraph::build(&sys, &deft, &faults);
        assert!(
            !cdg.has_cycle(),
            "DeFT CDG cyclic after the transition at cycle {cycle}: {:?}",
            cdg.find_cycle()
        );
    }
    assert!(deft.fault_transitions() >= 1);
}
