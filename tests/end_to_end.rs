//! End-to-end experiment sanity: quick versions of the paper's headline
//! comparisons, spanning every crate.

use deft::experiments::{fig4, fig5, fig6_pairs, fig7, Algo, ExpConfig, SynPattern};
use deft::prelude::*;
use deft_power::{table1, RouterParams, Tech45nm};

#[test]
fn fig4_uniform_quick_panel_is_sane() {
    let sys = ChipletSystem::baseline_4();
    let cfg = ExpConfig::quick();
    let sweep = fig4(
        &sys,
        SynPattern::Uniform,
        &[0.002, 0.006],
        &Algo::MAIN,
        &cfg,
    );
    assert_eq!(sweep.curves.len(), 3);
    for c in &sweep.curves {
        assert_eq!(c.points.len(), 2);
        let (low, high) = (c.points[0].1, c.points[1].1);
        assert!(low > 5.0, "{}: implausibly low latency {low}", c.algorithm);
        assert!(
            high >= low * 0.8,
            "{}: latency should not collapse with load ({low} -> {high})",
            c.algorithm
        );
    }
    // At the loaded point, DeFT does not lose to RC.
    let deft = sweep.latency_at("DeFT", 0.006).unwrap();
    let rc = sweep.latency_at("RC", 0.006).unwrap();
    assert!(deft <= rc * 1.05, "DeFT {deft} vs RC {rc}");
}

#[test]
fn fig5_regions_cover_the_whole_system() {
    let sys = ChipletSystem::baseline_4();
    let rows = fig5(&sys, SynPattern::Localized, 0.004, &ExpConfig::quick());
    assert_eq!(rows.len(), 1 + sys.chiplet_count());
    // Paper: Uniform/Localized balance within a fraction of a percent at
    // full windows; allow slack for the quick config.
    for r in &rows {
        assert!(
            (r.vc0_percent - 50.0).abs() < 10.0,
            "{}: {}%",
            r.region,
            r.vc0_percent
        );
    }
}

#[test]
fn fig6b_heavy_pairs_favor_deft_over_rc() {
    let sys = ChipletSystem::baseline_4();
    let cfg = ExpConfig::quick();
    let rows = fig6_pairs(&sys, &cfg);
    assert_eq!(rows.len(), 8);
    assert_eq!(rows[0].label, "FA+FL");
    assert_eq!(rows[7].label, "ST+FL");
    // The heaviest pair shows a clear win against RC (paper: up to 40%).
    assert!(
        rows[7].vs_rc_percent > 5.0,
        "ST+FL vs RC improvement only {:.1}%",
        rows[7].vs_rc_percent
    );
}

#[test]
fn fig7_matches_the_papers_headline_claims() {
    let sys = ChipletSystem::baseline_4();
    let curves = fig7(&sys, 8);
    // "DeFT achieves complete (100%) reachability for the considered
    // fault-injection rates."
    assert!(curves.deft.iter().all(|&r| (r - 100.0).abs() < 1e-9));
    // "In the worst case, DeFT improves network reachability by ... up to
    // 75% compared to MTR": the MTR worst-case floor drops far below 100%.
    let mtr_floor = curves.mtr_worst.last().unwrap();
    assert!(*mtr_floor < 80.0, "MTR worst-case floor {mtr_floor}");
    // RC is never better than MTR on average.
    for i in 0..curves.k.len() {
        assert!(curves.rc_avg[i] <= curves.mtr_avg[i] + 1e-9);
    }
}

#[test]
fn table1_reproduces_the_overhead_claims() {
    let rows = table1(&RouterParams::paper_default(), &Tech45nm::default());
    let deft = rows.iter().find(|r| r.variant == "DeFT").unwrap();
    // "less than 2% and 1% hardware and power overhead".
    assert!(deft.norm_area < 1.02);
    assert!(deft.norm_power < 1.01);
    let rc_b = rows.iter().find(|r| r.variant == "RC bndry").unwrap();
    assert!(
        rc_b.norm_area > 1.10,
        "RC boundary router pays for the RC-buffer"
    );
}

#[test]
fn six_chiplet_system_runs_end_to_end() {
    let sys = ChipletSystem::baseline_6();
    let cfg = ExpConfig::quick();
    let sweep = fig4(&sys, SynPattern::Uniform, &[0.003], &Algo::MAIN, &cfg);
    for c in &sweep.curves {
        assert!(
            c.points[0].1 > 0.0,
            "{} produced no traffic on 6 chiplets",
            c.algorithm
        );
    }
}

#[test]
fn traffic_aware_optimization_does_not_regress() {
    // Paper §IV-A: "Including traffic information in the offline
    // optimization results in further improvements." At minimum it must
    // not be worse than uniform-optimized DeFT under a skewed workload.
    let sys = ChipletSystem::baseline_4();
    let st = AppProfile::by_abbrev("ST").unwrap();
    let fl = AppProfile::by_abbrev("FL").unwrap();
    let traffic = multi_app(&sys, st, fl, 9);
    let cfg = SimConfig {
        warmup: 300,
        measure: 2_000,
        ..SimConfig::default()
    };

    let plain = Simulator::new(
        &sys,
        FaultState::none(&sys),
        Box::new(DeftRouting::new(&sys)),
        &traffic,
        cfg,
    )
    .run();
    let aware = {
        let rates: Vec<f64> = sys
            .nodes()
            .map(|n| traffic.inter_chiplet_rate(&sys, n))
            .collect();
        let alg = DeftRouting::with_traffic(&sys, move |n: NodeId| rates[n.index()]);
        Simulator::new(&sys, FaultState::none(&sys), Box::new(alg), &traffic, cfg).run()
    };
    assert!(!plain.deadlocked && !aware.deadlocked);
    assert!(
        aware.avg_latency <= plain.avg_latency * 1.10,
        "traffic-aware {} vs uniform-optimized {}",
        aware.avg_latency,
        plain.avg_latency
    );
}
