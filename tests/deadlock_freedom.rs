//! Deadlock freedom, verified three ways:
//! 1. the channel dependency graph of DeFT is acyclic on the paper systems;
//! 2. the same network *without* VN separation is cyclic (Fig. 1);
//! 3. the simulator's watchdog stays silent for DeFT at saturation but
//!    fires for an intentionally cyclic routing function.

use deft::prelude::*;
use deft_routing::algorithm::{FlowChoice, FlowEligibility, RouteDecision};
use deft_topo::Direction;

#[test]
fn deft_cdg_is_acyclic_on_the_baseline_4_system() {
    let sys = ChipletSystem::baseline_4();
    let deft = DeftRouting::distance_based(&sys);
    let cdg = ChannelDependencyGraph::build(&sys, &deft, &FaultState::none(&sys));
    assert!(cdg.channel_count() > 100);
    assert!(!cdg.has_cycle(), "cycle: {:?}", cdg.find_cycle());
}

#[test]
fn deft_cdg_stays_acyclic_under_heavy_faults() {
    let sys = ChipletSystem::baseline_4();
    // 8 faults (25%), the paper's maximum rate.
    let mut faults = FaultState::none(&sys);
    for (c, i, d) in [
        (0u8, 0u8, VlDir::Down),
        (0, 1, VlDir::Down),
        (1, 2, VlDir::Up),
        (1, 3, VlDir::Up),
        (2, 0, VlDir::Down),
        (2, 1, VlDir::Up),
        (3, 2, VlDir::Down),
        (3, 3, VlDir::Up),
    ] {
        faults.inject(VlLinkId {
            chiplet: ChipletId(c),
            index: i,
            dir: d,
        });
    }
    let deft = DeftRouting::new(&sys);
    let cdg = ChannelDependencyGraph::build(&sys, &deft, &faults);
    assert!(!cdg.has_cycle());
}

#[test]
fn the_fig1_cycle_exists_without_vn_separation() {
    let sys = ChipletSystem::baseline_4();
    let deft = DeftRouting::distance_based(&sys);
    let cdg = ChannelDependencyGraph::build_single_vn(&sys, &deft, &FaultState::none(&sys));
    let cycle = cdg.find_cycle().expect("single-VC 2.5D networks deadlock");
    assert!(
        cycle.iter().any(|c| c.dir.is_vertical()),
        "inter-chiplet cycle expected"
    );
}

#[test]
fn mtr_and_rc_cdgs_are_acyclic_on_the_baseline() {
    let sys = ChipletSystem::baseline_4();
    let faults = FaultState::none(&sys);
    for alg in [
        Box::new(MtrRouting::new(&sys)) as Box<dyn RoutingAlgorithm>,
        Box::new(RcRouting::new(&sys)),
    ] {
        let cdg = ChannelDependencyGraph::build(&sys, alg.as_ref(), &faults);
        assert!(!cdg.has_cycle(), "{}", alg.name());
    }
}

#[test]
fn deft_survives_saturation_without_deadlock() {
    let sys = ChipletSystem::baseline_4();
    // Far past saturation.
    let pattern = uniform(&sys, 0.05);
    let cfg = SimConfig {
        warmup: 200,
        measure: 1_500,
        drain: 2_000,
        deadlock_threshold: 1_000,
        ..SimConfig::default()
    };
    let report = Simulator::new(
        &sys,
        FaultState::none(&sys),
        Box::new(DeftRouting::new(&sys)),
        &pattern,
        cfg,
    )
    .run();
    assert!(!report.deadlocked, "DeFT deadlocked at saturation");
    assert!(report.delivered > 0);
}

/// An intentionally cyclic routing function: packets circle the four
/// corner-adjacent tiles of chiplet 0 clockwise to a destination two steps
/// ahead, all in one VN. With 8-flit packets and 4-flit buffers, four
/// concurrent worms form the classic ring deadlock — the watchdog must
/// catch it.
#[derive(Debug)]
struct RingRouting;

impl RoutingAlgorithm for RingRouting {
    fn name(&self) -> &str {
        "Ring"
    }

    fn on_inject(
        &mut self,
        _sys: &ChipletSystem,
        _faults: &FaultState,
        _src: NodeId,
        _dst: NodeId,
        _seq: u64,
    ) -> Result<deft_routing::RouteCtx, RouteError> {
        Ok(deft_routing::RouteCtx::local(Vn::Vn0))
    }

    fn route(
        &self,
        sys: &ChipletSystem,
        _faults: &FaultState,
        node: NodeId,
        _dst: NodeId,
        _ctx: &mut deft_routing::RouteCtx,
    ) -> RouteDecision {
        // Clockwise on the 2x2 ring at chiplet 0's southwest corner:
        // (0,0) -> (0,1) -> (1,1) -> (1,0) -> (0,0).
        let c = sys.addr(node).coord;
        let dir = match (c.x, c.y) {
            (0, 0) => Direction::North,
            (0, 1) => Direction::East,
            (1, 1) => Direction::South,
            _ => Direction::West,
        };
        RouteDecision { dir, vn: Vn::Vn0 }
    }

    fn eligibility(&self, _sys: &ChipletSystem, _src: NodeId, _dst: NodeId) -> FlowEligibility {
        FlowEligibility {
            down: None,
            up: None,
        }
    }

    fn flow_choices(
        &self,
        _sys: &ChipletSystem,
        _faults: &FaultState,
        _src: NodeId,
        _dst: NodeId,
    ) -> Vec<FlowChoice> {
        Vec::new()
    }
}

#[test]
fn the_watchdog_catches_a_cyclic_routing_function() {
    let sys = ChipletSystem::baseline_4();
    // Each ring tile sends to the tile two hops ahead, continuously.
    let ring = [
        Coord::new(0, 0),
        Coord::new(0, 1),
        Coord::new(1, 1),
        Coord::new(1, 0),
    ];
    let ids: Vec<NodeId> = ring
        .iter()
        .map(|&c| {
            sys.node_id(NodeAddr::new(Layer::Chiplet(ChipletId(0)), c))
                .unwrap()
        })
        .collect();
    let n = sys.node_count();
    let mut rates = vec![0.0; n];
    let mut dists: Vec<deft_traffic::Mixture> =
        (0..n).map(|_| deft_traffic::Mixture::empty()).collect();
    for (i, &src) in ids.iter().enumerate() {
        rates[src.index()] = 0.5;
        dists[src.index()] = deft_traffic::Mixture::uniform(vec![ids[(i + 2) % 4]]);
    }
    let pattern = deft_traffic::TableTraffic::new("ring", rates, dists);
    let cfg = SimConfig {
        warmup: 0,
        measure: 3_000,
        drain: 3_000,
        deadlock_threshold: 500,
        ..SimConfig::default()
    };
    let report = Simulator::new(
        &sys,
        FaultState::none(&sys),
        Box::new(RingRouting),
        &pattern,
        cfg,
    )
    .run();
    assert!(
        report.deadlocked,
        "the ring workload must deadlock under cyclic routing"
    );
}
