//! Multi-application execution: co-schedule two PARSEC-profile workloads on
//! disjoint chiplet halves (paper Fig. 6(b)) and compare DeFT against MTR
//! and RC under the resulting vertical-link congestion.
//!
//! Run with: `cargo run --release -p deft --example multi_app`

use deft::prelude::*;

fn main() {
    let sys = ChipletSystem::baseline_4();

    // The paper's heaviest pair: streamcluster + fluidanimate.
    let st = AppProfile::by_abbrev("ST").expect("streamcluster profile");
    let fl = AppProfile::by_abbrev("FL").expect("fluidanimate profile");
    let traffic = multi_app(&sys, st, fl, 42);
    println!(
        "workload {}: offered load {:.4} packets/cycle total",
        traffic.name(),
        traffic.offered_load()
    );

    let cfg = SimConfig {
        warmup: 1_000,
        measure: 6_000,
        ..SimConfig::default()
    };
    let mut latencies = Vec::new();
    for name in ["DeFT", "MTR", "RC"] {
        let algo: Box<dyn RoutingAlgorithm> = match name {
            "DeFT" => Box::new(DeftRouting::new(&sys)),
            "MTR" => Box::new(MtrRouting::new(&sys)),
            _ => Box::new(RcRouting::new(&sys)),
        };
        let report = Simulator::new(&sys, FaultState::none(&sys), algo, &traffic, cfg).run();
        println!(
            "  {:>5}: avg latency {:>7.1} cycles, delivered {:>5.1}%, deadlocked: {}",
            name,
            report.avg_latency,
            100.0 * report.delivery_ratio(),
            report.deadlocked
        );
        latencies.push((name, report.avg_latency));
    }

    let deft = latencies[0].1;
    for &(name, lat) in &latencies[1..] {
        if lat > 0.0 {
            println!(
                "DeFT improves latency by {:.1}% vs {}",
                100.0 * (lat - deft) / lat,
                name
            );
        }
    }

    // Single-application contrast (paper Fig. 6(a)): lightly loaded, so the
    // gap shrinks.
    println!("\nsingle application (facesim) for contrast:");
    let fa = AppProfile::by_abbrev("FA").expect("facesim profile");
    let traffic = single_app(&sys, fa, 42);
    for name in ["DeFT", "MTR"] {
        let algo: Box<dyn RoutingAlgorithm> = match name {
            "DeFT" => Box::new(DeftRouting::new(&sys)),
            _ => Box::new(MtrRouting::new(&sys)),
        };
        let report = Simulator::new(&sys, FaultState::none(&sys), algo, &traffic, cfg).run();
        println!(
            "  {:>5}: avg latency {:>7.1} cycles",
            name, report.avg_latency
        );
    }
}
