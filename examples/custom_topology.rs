//! Custom topology: DeFT is not tied to the paper's baseline — build an
//! asymmetric 3-chiplet system with mixed chiplet sizes and VL counts,
//! verify deadlock freedom mechanically with the channel-dependency-graph
//! checker, and simulate it.
//!
//! Run with: `cargo run --release -p deft --example custom_topology`

use deft::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 12x4 interposer carrying one 4x4 compute chiplet, one 4x4 chiplet
    // with only 2 VLs (cheap harvested die), and one 2x4 accelerator.
    let sys = SystemBuilder::new(12, 4)
        .chiplet(
            Coord::new(0, 0),
            4,
            4,
            &[
                Coord::new(1, 3),
                Coord::new(3, 2),
                Coord::new(2, 0),
                Coord::new(0, 1),
            ],
        )
        .chiplet(
            Coord::new(4, 0),
            4,
            4,
            &[Coord::new(0, 2), Coord::new(3, 1)],
        )
        .chiplet(
            Coord::new(8, 0),
            2,
            4,
            &[Coord::new(0, 0), Coord::new(1, 3)],
        )
        .build()?;
    println!(
        "custom system: {} chiplets, {} nodes, {} vertical links",
        sys.chiplet_count(),
        sys.node_count(),
        sys.vertical_link_count()
    );

    // Mechanical deadlock-freedom proof: the channel dependency graph over
    // every routing choice DeFT can make must be acyclic (Dally & Seitz).
    let deft = DeftRouting::new(&sys);
    let cdg = ChannelDependencyGraph::build(&sys, &deft, &FaultState::none(&sys));
    println!(
        "CDG: {} channels, {} dependencies, cyclic: {}",
        cdg.channel_count(),
        cdg.edge_count(),
        cdg.has_cycle()
    );
    assert!(
        !cdg.has_cycle(),
        "DeFT must be deadlock-free on any 2.5D system"
    );

    // Without VN separation the very same topology deadlocks:
    let naive = ChannelDependencyGraph::build_single_vn(&sys, &deft, &FaultState::none(&sys));
    println!("single-VC network cyclic: {}", naive.has_cycle());

    // Simulate localized traffic on the custom system.
    let pattern = localized(&sys, 0.004);
    let cfg = SimConfig {
        warmup: 500,
        measure: 4_000,
        ..SimConfig::default()
    };
    let report = Simulator::new(&sys, FaultState::none(&sys), Box::new(deft), &pattern, cfg).run();
    println!(
        "simulated: avg latency {:.1} cycles, delivered {:.1}%, deadlocked: {}",
        report.avg_latency,
        100.0 * report.delivery_ratio(),
        report.deadlocked
    );

    // Fault tolerance still holds: kill one VL of the 2-VL chiplet.
    let mut faults = FaultState::none(&sys);
    faults.inject(VlLinkId {
        chiplet: ChipletId(1),
        index: 0,
        dir: VlDir::Down,
    });
    let engine = ReachabilityEngine::new(&sys, &DeftRouting::new(&sys));
    println!(
        "reachability with one faulty VL on the 2-VL chiplet: {:.1}%",
        100.0 * engine.reachability_under(&sys, &faults)
    );
    Ok(())
}
