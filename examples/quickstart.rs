//! Quickstart: simulate DeFT on the paper's 4-chiplet system under uniform
//! traffic and print the headline statistics.
//!
//! Run with: `cargo run --release -p deft --example quickstart`

use deft::prelude::*;

fn main() {
    // The paper's baseline: four 4x4 chiplets on an 8x8 active interposer,
    // four vertical links per chiplet.
    let sys = ChipletSystem::baseline_4();
    println!(
        "system: {} chiplets, {} nodes, {} vertical links ({} unidirectional)",
        sys.chiplet_count(),
        sys.node_count(),
        sys.vertical_link_count(),
        sys.unidirectional_vl_count(),
    );

    // DeFT with offline VL-selection optimization under uniform traffic.
    let deft = DeftRouting::new(&sys);

    // Uniform random traffic at 0.004 packets/cycle/node.
    let pattern = uniform(&sys, 0.004);

    let cfg = SimConfig {
        warmup: 1_000,
        measure: 5_000,
        ..SimConfig::default()
    };
    let report = Simulator::new(&sys, FaultState::none(&sys), Box::new(deft), &pattern, cfg).run();

    println!("algorithm:        {}", report.algorithm);
    println!("pattern:          {}", report.pattern);
    println!("packets measured: {}", report.injected_measured);
    println!(
        "delivered:        {} ({:.1}%)",
        report.delivered,
        100.0 * report.delivery_ratio()
    );
    println!("avg latency:      {:.1} cycles", report.avg_latency);
    println!("max latency:      {} cycles", report.max_latency);
    println!(
        "throughput:       {:.4} flits/cycle/node",
        report.throughput
    );
    println!("deadlocked:       {}", report.deadlocked);

    println!("\nVC utilization per region (paper Fig. 5):");
    for (region, usage) in &report.vc_usage {
        println!(
            "  {:>9}  VC1 {:>5.1}%  VC2 {:>5.1}%",
            region.to_string(),
            usage.vc0_percent(),
            100.0 - usage.vc0_percent()
        );
    }
}
