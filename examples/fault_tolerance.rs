//! Fault tolerance: inject vertical-link faults and compare how DeFT, MTR,
//! and RC cope — both analytically (exact reachability) and in simulation.
//!
//! Run with: `cargo run --release -p deft --example fault_tolerance`

use deft::prelude::*;

fn main() {
    let sys = ChipletSystem::baseline_4();

    // An adversarial 4-fault scenario (12.5% fault rate): kill both
    // east-half down-VLs of chiplet 0 — MTR's eastbound flows lose every
    // eligible VL, while DeFT re-routes through the west-half VLs.
    let mut faults = FaultState::none(&sys);
    for (index, dir) in [(1u8, VlDir::Down), (2, VlDir::Down)] {
        faults.inject(VlLinkId {
            chiplet: ChipletId(0),
            index,
            dir,
        });
    }
    faults.inject(VlLinkId {
        chiplet: ChipletId(3),
        index: 0,
        dir: VlDir::Up,
    });
    faults.inject(VlLinkId {
        chiplet: ChipletId(1),
        index: 3,
        dir: VlDir::Up,
    });
    println!("injected faults:");
    for l in faults.links() {
        println!("  {l}");
    }

    println!("\nexact reachability under this scenario:");
    for algo in [
        Box::new(DeftRouting::new(&sys)) as Box<dyn RoutingAlgorithm>,
        Box::new(MtrRouting::new(&sys)),
        Box::new(RcRouting::new(&sys)),
    ] {
        let engine = ReachabilityEngine::new(&sys, algo.as_ref());
        println!(
            "  {:>5}: {:.2}%",
            algo.name(),
            100.0 * engine.reachability_under(&sys, &faults)
        );
    }

    println!("\nsimulated under uniform traffic (dropped = unroutable packets):");
    let pattern = uniform(&sys, 0.003);
    let cfg = SimConfig {
        warmup: 500,
        measure: 3_000,
        ..SimConfig::default()
    };
    for algo in ["DeFT", "MTR", "RC"] {
        let boxed: Box<dyn RoutingAlgorithm> = match algo {
            "DeFT" => Box::new(DeftRouting::new(&sys)),
            "MTR" => Box::new(MtrRouting::new(&sys)),
            _ => Box::new(RcRouting::new(&sys)),
        };
        let report = Simulator::new(&sys, faults.clone(), boxed, &pattern, cfg).run();
        println!(
            "  {:>5}: reachability {:.2}%  avg latency {:.1} cycles  dropped {}",
            algo,
            100.0 * report.reachability(),
            report.avg_latency,
            report.dropped_unroutable,
        );
    }

    // Exact average/worst-case curves, as in the paper's Fig. 7(a).
    println!("\nexact reachability vs fault count (paper Fig. 7a):");
    let deft = ReachabilityEngine::new(&sys, &DeftRouting::new(&sys));
    let mtr = ReachabilityEngine::new(&sys, &MtrRouting::new(&sys));
    let rc = ReachabilityEngine::new(&sys, &RcRouting::new(&sys));
    println!("  k   DeFT   MTR-Avg  MTR-Wrst  RC-Avg  RC-Wrst");
    for k in 1..=8 {
        println!(
            "  {}  {:>6.2}  {:>7.2}  {:>8.2}  {:>6.2}  {:>7.2}",
            k,
            100.0 * deft.average(k),
            100.0 * mtr.average(k),
            100.0 * mtr.worst_case(k),
            100.0 * rc.average(k),
            100.0 * rc.worst_case(k),
        );
    }
}
