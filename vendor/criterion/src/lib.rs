//! Offline mini stand-in for `criterion`.
//!
//! Provides [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros
//! with the call signatures this workspace's benches use. Measurement is a
//! simple mean over `sample_size` timed runs after one warmup run — no
//! statistics, plots, or baselines — so `cargo bench` works in a
//! network-less container. Swap in the real `criterion = "0.5"` (with
//! `harness = false`, already configured) for publication-grade numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing away a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Entry point handed to each benchmark function.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Times `f` under `id`, printing one summary line.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self.default_sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed runs each benchmark in the group performs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    /// Finishes the group. (No-op in the shim; kept for API compatibility.)
    pub fn finish(self) {}
}

/// Times the closure handed to [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` once per sample and records the elapsed wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    // Warmup run: not recorded.
    f(&mut Bencher::default());
    let mut bencher = Bencher::default();
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    if bencher.samples.is_empty() {
        println!("{id:<48} (no iterations)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let (min, max) = (
        bencher.samples.iter().min().expect("non-empty"),
        bencher.samples.iter().max().expect("non-empty"),
    );
    println!(
        "{id:<48} mean {mean:>12.3?}   min {min:>12.3?}   max {max:>12.3?}   ({} samples)",
        bencher.samples.len()
    );
}

/// Bundles benchmark functions into a runnable group, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups, mirroring criterion's macro of
/// the same name. Command-line arguments (e.g. cargo's `--bench`) are
/// accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_probe(c: &mut Criterion) {
        c.bench_function("probe", |b| b.iter(|| black_box(2u64 + 2)));
        let mut group = c.benchmark_group("grp");
        group.sample_size(3);
        group.bench_function(String::from("inner"), |b| b.iter(|| black_box(1)));
        group.finish();
    }

    criterion_group!(probe_group, bench_probe);

    #[test]
    fn harness_runs_and_samples() {
        probe_group();
        let mut b = Bencher::default();
        b.iter(|| 42);
        b.iter(|| 43);
        assert_eq!(b.samples.len(), 2);
    }
}
