//! Offline no-op stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public data types
//! but nothing serializes yet (no serde_json call sites), so in this
//! network-less build the derives expand to nothing and the traits in the
//! companion `serde` shim carry blanket impls. Swapping in the real serde
//! stack later requires no source changes.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (including `#[serde(...)]` helper
/// attributes) and emits no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (including `#[serde(...)]` helper
/// attributes) and emits no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
