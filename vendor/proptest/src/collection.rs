//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::{TestCaseError, TestRng};
use core::ops::{Range, RangeInclusive};

/// Length specifications accepted by [`vec()`]: an exact `usize`, `a..b`, or
/// `a..=b`.
pub trait IntoSizeRange {
    /// Lower and upper bound (inclusive) on the generated length.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty vec size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty vec size range");
        (*self.start(), *self.end())
    }
}

/// Strategy yielding `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, TestCaseError> {
        let len = if self.min == self.max {
            self.min
        } else {
            self.min + rng.below((self.max - self.min + 1) as u64) as usize
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
