//! Test-runner types: configuration, case errors, and the deterministic RNG.

/// How a property run is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; this shim keeps that so properties
        // without an explicit config get comparable coverage.
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` or a filter; it is skipped
    /// and another input is generated.
    Reject(&'static str),
    /// The property's assertion failed; the whole test fails.
    Fail(String),
}

/// Result type threaded through a [`proptest!`](crate::proptest) body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic per-case RNG (SplitMix64 over a hash of the test path and
/// attempt index). Every run of the same test binary generates the same
/// cases, which replaces proptest's persisted failure seeds.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for attempt `attempt` of the test identified by `test_path`.
    pub fn deterministic(test_path: &str, attempt: u64) -> Self {
        // FNV-1a over the path, then mix in the attempt.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 uniformly random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
