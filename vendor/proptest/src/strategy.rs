//! The [`Strategy`] trait and the primitive strategies this workspace uses.

use crate::test_runner::{TestCaseError, TestRng};
use core::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// produces a final value directly. `Err(Reject)` signals a filtered-out
/// case, which the runner skips.
pub trait Strategy {
    /// Type of value this strategy generates.
    type Value;

    /// Generates one value (or rejects the case).
    fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, TestCaseError>;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects generated values for which `f` returns false. `whence` names
    /// the filter in rejection diagnostics.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

// Strategies are generated through `&strat` in the macro expansion, so a
// blanket impl over references keeps owned and borrowed forms equivalent.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, TestCaseError> {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Result<T, TestCaseError> {
        Ok(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> Result<O, TestCaseError> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Result<S::Value, TestCaseError> {
        let v = self.inner.generate(rng)?;
        if (self.f)(&v) {
            Ok(v)
        } else {
            Err(TestCaseError::Reject(self.whence))
        }
    }
}

/// Strategy for a fair coin; use via [`bool::ANY`](crate::bool::ANY).
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> Result<bool, TestCaseError> {
        Ok(rng.next_u64() & 1 == 1)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Result<$t, TestCaseError> {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                Ok((self.start as i128 + rng.below(span) as i128) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Result<$t, TestCaseError> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return Ok(rng.next_u64() as $t);
                }
                Ok((lo as i128 + rng.below(span + 1) as i128) as $t)
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> Result<f64, TestCaseError> {
        assert!(self.start < self.end, "empty strategy range");
        Ok(self.start + rng.unit_f64() * (self.end - self.start))
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> Result<f32, TestCaseError> {
        assert!(self.start < self.end, "empty strategy range");
        Ok(self.start + (rng.unit_f64() as f32) * (self.end - self.start))
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, TestCaseError> {
                let ($($name,)+) = self;
                Ok(($($name.generate(rng)?,)+))
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
