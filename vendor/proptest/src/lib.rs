//! Offline mini stand-in for `proptest`.
//!
//! Implements the subset this workspace uses — the [`proptest!`] macro,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`,
//! [`strategy::Strategy`] with `prop_map`/`prop_filter`, range and tuple
//! strategies, `prop::collection::vec`, `prop::bool::ANY`, and
//! [`test_runner::ProptestConfig`] — on a deterministic per-test RNG.
//!
//! Differences from real proptest, deliberately accepted for an offline
//! build: failing cases are reported but **not shrunk**, and generation is
//! seeded from the test's name so runs are reproducible rather than
//! entropy-driven. The macro surface matches, so swapping the real
//! `proptest = "1"` back in requires no source changes.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// `bool`-valued strategies.
pub mod bool {
    /// Strategy yielding `true` or `false` with equal probability.
    pub const ANY: crate::strategy::AnyBool = crate::strategy::AnyBool;
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespaced strategy modules, mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Runs one property macro-expanded by [`proptest!`]: generates up to
/// `cases` accepted inputs, skipping rejects (`prop_assume!` / filters) up
/// to a bounded number of attempts.
///
/// This is an implementation detail of the macro, public so the expansion
/// can reach it.
pub fn run_property<F>(config: test_runner::ProptestConfig, test_path: &str, mut one_case: F)
where
    F: FnMut(&mut test_runner::TestRng, u64) -> test_runner::TestCaseResult,
{
    let target = config.cases.max(1);
    let max_attempts = (target as u64).saturating_mul(20).max(1024);
    let mut accepted = 0u32;
    for attempt in 0..max_attempts {
        let mut rng = test_runner::TestRng::deterministic(test_path, attempt);
        match one_case(&mut rng, attempt) {
            Ok(()) => {
                accepted += 1;
                if accepted >= target {
                    return;
                }
            }
            Err(test_runner::TestCaseError::Reject(_)) => {}
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest property {test_path} failed on attempt {attempt} \
                     (deterministic; re-run reproduces it): {msg}"
                );
            }
        }
    }
    panic!(
        "proptest property {test_path}: only {accepted}/{target} cases accepted \
         after {max_attempts} attempts — assumptions/filters reject too much"
    );
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
///
/// ```
/// use proptest::prelude::*;
///
/// // Inside a test module each `fn` would carry `#[test]`; the attribute is
/// // forwarded verbatim. Without it the property is a plain function, which
/// // lets this doctest invoke it directly.
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_property(
                    $cfg,
                    concat!(module_path!(), "::", stringify!($name)),
                    |rng, _attempt| {
                        $(
                            let $arg = $crate::strategy::Strategy::generate(&($strat), rng)?;
                        )+
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (with
/// an optional formatted message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)+), l, r
        );
    }};
}

/// Asserts two expressions are unequal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` ({})\n  both: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)+), l
        );
    }};
}

/// Rejects the current case (it is regenerated, not counted as a failure)
/// when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_honor_bounds(x in 3u8..17, y in 0u64..=4, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((0.25..0.75).contains(&f), "f = {}", f);
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (1u8..=3, 1u8..=2).prop_map(|(a, b)| (a as u32) * 10 + b as u32)
        ) {
            prop_assert!((11..=32).contains(&pair));
        }

        #[test]
        fn vec_strategy_honors_size(
            v in crate::collection::vec((0u8..4, crate::bool::ANY), 2..=5)
        ) {
            prop_assert!((2..=5).contains(&v.len()));
            for (n, _flag) in v {
                prop_assert!(n < 4);
            }
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u32..10, b in 0u32..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("t", 3);
        let mut b = crate::test_runner::TestRng::deterministic("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::deterministic("t", 4);
        assert_ne!(
            crate::test_runner::TestRng::deterministic("t", 3).next_u64(),
            c.next_u64()
        );
    }

    #[test]
    #[should_panic(expected = "reject too much")]
    fn impossible_assumption_panics_with_diagnosis() {
        crate::run_property(
            ProptestConfig::with_cases(4),
            "impossible",
            |_rng, _attempt| {
                prop_assume!(false);
                Ok(())
            },
        );
    }

    #[test]
    #[should_panic(expected = "failed on attempt")]
    fn failing_property_panics() {
        crate::run_property(ProptestConfig::with_cases(4), "failing", |rng, _attempt| {
            let v = Strategy::generate(&(0u8..4), rng)?;
            prop_assert!(v >= 4, "v = {}", v);
            Ok(())
        });
    }
}
