//! Offline stand-in for the `rand` crate, exposing the subset of the 0.9 API
//! this workspace uses: [`SeedableRng::seed_from_u64`], [`Rng::random`],
//! [`Rng::random_range`], [`Rng::random_bool`], and [`rngs::SmallRng`] /
//! [`rngs::StdRng`].
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors this shim as a path dependency. The generators are real,
//! platform-independent PRNGs (xoshiro256++ seeded through SplitMix64 — the
//! same construction rand 0.9 uses for `SmallRng` on 64-bit targets), so
//! seeded runs are deterministic everywhere. When a registry is reachable the
//! shim can be replaced by the real `rand = "0.9"` without touching any call
//! site.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;

/// A random number generator core: the raw source of uniform bits.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator seedable from a small integer, for reproducible streams.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32`: uniform in `[0, 1)`; integers: uniform over the full
    /// range; `bool`: fair coin).
    fn random<T: sample::StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R: sample::SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0, 1]");
        sample::unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod sample {
    //! Standard-distribution and range sampling used by [`Rng`](crate::Rng).

    use crate::RngCore;
    use core::ops::{Range, RangeInclusive};

    /// Converts 64 random bits to a uniform `f64` in `[0, 1)`.
    pub(crate) fn unit_f64(bits: u64) -> f64 {
        // 53 mantissa bits, as rand's StandardUniform does.
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Types samplable by [`Rng::random`](crate::Rng::random).
    pub trait StandardUniform: Sized {
        /// Draws one value from the type's standard distribution.
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl StandardUniform for f64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            unit_f64(rng.next_u64())
        }
    }

    impl StandardUniform for f32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl StandardUniform for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl StandardUniform for $t {
                fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Ranges accepted by [`Rng::random_range`](crate::Rng::random_range).
    pub trait SampleRange<T> {
        /// Draws one value uniformly from `self`.
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Uniform `u64` in `[0, span)` by widening multiply (Lemire's method,
    /// without the rejection step; bias is < 2^-32 for the spans used here).
    fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        debug_assert!(span > 0);
        (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
    }

    macro_rules! impl_sample_range_int {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + below(rng, span) as i128) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + below(rng, span + 1) as i128) as $t
                }
            }
        )*};
    }
    impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleRange<f64> for Range<f64> {
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
        }
    }

    impl SampleRange<f32> for Range<f32> {
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + (f32::sample_standard(rng)) * (self.end - self.start)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(3u8..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(0usize..=4);
            assert!(w <= 4);
            let x = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&x));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn random_bool_respects_probability() {
        let mut rng = SmallRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
