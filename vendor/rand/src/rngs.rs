//! Concrete generators: [`SmallRng`] and [`StdRng`].

use crate::{RngCore, SeedableRng};

/// SplitMix64 step, used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ — the algorithm behind rand 0.9's `SmallRng` on 64-bit
/// platforms. Small state, excellent statistical quality, not
/// cryptographically secure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// The raw xoshiro256++ state words, for checkpointing a stream
    /// mid-run. Upstream rand exposes the same capability through
    /// `SmallRng`'s serde support; the offline build has a no-op serde
    /// shim, so this accessor pair stands in for it.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from [`state`](Self::state): the restored
    /// stream continues exactly where the saved one left off.
    pub fn from_state(s: [u64; 4]) -> Self {
        SmallRng { s }
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; SplitMix64 cannot produce
        // four zero outputs in a row, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Stand-in for rand's `StdRng`. The real one is ChaCha12; this shim reuses
/// xoshiro256++, which is statistically strong but **not** cryptographically
/// secure — fine for simulation workloads, never for secrets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng(SmallRng);

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng(SmallRng::seed_from_u64(seed))
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_xoshiro_stream() {
        // First outputs for seed 0 — locks the implementation so a future
        // edit cannot silently change every seeded experiment in the repo.
        let mut rng = SmallRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut again = SmallRng::seed_from_u64(0);
        let second: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(first, second);
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut rng = SmallRng::seed_from_u64(42);
        rng.next_u64();
        let saved = rng.state();
        let upcoming: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut restored = SmallRng::from_state(saved);
        let resumed: Vec<u64> = (0..4).map(|_| restored.next_u64()).collect();
        assert_eq!(upcoming, resumed);
    }

    #[test]
    fn std_rng_matches_itself() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_eq!(a.next_u32(), b.next_u32());
    }
}
