//! Offline stand-in for `serde`.
//!
//! Provides `Serialize`/`Deserialize` as marker traits with blanket impls and
//! re-exports the no-op derive macros, so `#[derive(Serialize, Deserialize)]`
//! across the workspace compiles without crates.io access. No code in the
//! workspace currently serializes anything; when that changes, replace this
//! shim with the real `serde = { version = "1", features = ["derive"] }`.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(test)]
mod tests {
    use super::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Probe {
        a: u32,
        b: String,
    }

    #[derive(Serialize, Deserialize)]
    #[allow(dead_code)]
    enum ProbeEnum {
        Unit,
        Tuple(u8, u8),
        Named { x: f64 },
    }

    fn assert_serialize<T: Serialize>() {}

    #[test]
    fn derives_compile_and_traits_are_blanket() {
        assert_serialize::<Probe>();
        assert_serialize::<ProbeEnum>();
        assert_serialize::<Vec<Probe>>();
        let p = Probe {
            a: 1,
            b: "x".into(),
        };
        assert_eq!(
            p,
            Probe {
                a: 1,
                b: "x".into()
            }
        );
    }
}
